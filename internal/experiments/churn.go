package experiments

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"geospanner/internal/obs"
	"geospanner/internal/serve"
	"geospanner/internal/stats"
	"geospanner/internal/udg"
)

// DefaultChurnNs is the node-count sweep of the churn campaign. The large
// point is the service-scale measurement (sustained events/sec and query
// QPS at n=10k); the small one is cheap enough to verify end to end.
func DefaultChurnNs() []int { return []int{1000, 10000} }

// churnEpochs and churnReaders shape the campaign: epochs per node count,
// and concurrent reader goroutines issuing route queries against the
// current snapshot while the writer applies batches.
// churnBaselineEpochs sizes the short patching-disabled pass that
// measures the before side of the recompute-ratio comparison — with
// witness patching off the ratio is flat across epochs (every structural
// batch recomputes), so a few epochs suffice to price one.
const (
	churnEpochs         = 30
	churnBaselineEpochs = 4
	churnReaders        = 4
)

// churnBatch sizes a campaign epoch: small, frequent batches — the
// steady-state regime of a live topology service, and the one witness
// patching targets (a batch touching most of the network is what the
// patch-scope fallback exists for and is measured by the baseline pass).
func churnBatch(n int) int {
	if b := n / 1000; b > 4 {
		return b
	}
	return 4
}

// Churn is the live-service campaign: for each profile and node count it
// builds a connected instance at constant average degree (≈20, like the
// scaling sweep), starts an in-process topology service, and applies
// churnEpochs synthetic churn batches while churnReaders goroutines
// hammer route queries against the epoch snapshots. It reports the
// writer's sustained event throughput, the concurrent query throughput,
// the route success fraction, and the maintenance profile — and, per
// cell, a short baseline pass with witness patching disabled under the
// same reader load, so ratio_off/eps_off versus recompute_ratio/
// events_per_sec is a before/after comparison of the incremental
// maintenance path on identical schedules. For n ≤ 2000 the final
// maintained backbone is re-verified against the full degraded-mode
// invariant set.
//
// With cfg.DataDir the service runs durably: every epoch is fsync'd to a
// write-ahead log before it is acknowledged — so events_per_sec then
// measures the durable write path — and after the campaign the server is
// abandoned without shutdown and recovered from the directory alone. The
// wal_mb, recover_ms and replayed columns report the log size, the wall
// time of the crash-restart, and the epochs replayed; recovery must be
// bit-exact (equal epoch fingerprints) or the campaign fails.
func Churn(ns []int, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	profs, err := churnProfiles(cfg.Profile)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("profile", "n", "epochs", "events", "applied", "events_per_sec", "qps", "route_ok", "ratio_off", "eps_off", "recompute_ratio", "patched", "patch_fallbacks", "fallbacks", "role_changes", "alive_final", "wal_mb", "recover_ms", "replayed")
	for _, prof := range profs {
		for _, n := range ns {
			if err := churnOne(tb, n, prof, cfg); err != nil {
				return nil, err
			}
		}
	}
	return tb, nil
}

// churnProfiles resolves cfg.Profile: empty = mixed (the historical
// schedule), "all" = every built-in profile, otherwise one by name.
func churnProfiles(name string) ([]serve.Profile, error) {
	switch name {
	case "":
		return []serve.Profile{serve.ProfileMixed}, nil
	case "all":
		return serve.Profiles(), nil
	default:
		p, ok := serve.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("churn: unknown profile %q (want move, mixed, join-heavy or all)", name)
		}
		return []serve.Profile{p}, nil
	}
}

// churnPassResult is one measured service run.
type churnPassResult struct {
	srv             *serve.Server
	st              serve.Stats
	secs            float64
	queries, routed int64
}

// churnPass drives one service instance through `epochs` scheduled
// batches under the campaign's concurrent reader load. Both the baseline
// (patching disabled) and the measured pass run through this function, so
// their throughput numbers are directly comparable.
func churnPass(inst *udg.Instance, radius float64, prof serve.Profile, cfg Config, epochs, batch int, opts ...serve.Option) (*churnPassResult, error) {
	srv, err := serve.New(inst.Points, radius, opts...)
	if err != nil {
		return nil, err
	}
	sched := serve.NewSchedulerProfile(cfg.Seed+1, inst.Points, cfg.Region, radius, prof)

	var (
		stop            = make(chan struct{})
		wg              sync.WaitGroup
		queries, routed atomic.Int64
	)
	for r := 0; r < churnReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(100+r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep := srv.Current()
				src, dst := pickAlive(rng, ep), pickAlive(rng, ep)
				if src < 0 || dst < 0 || src == dst {
					continue
				}
				if _, err := ep.Route(src, dst); err == nil {
					routed.Add(1)
				}
				queries.Add(1)
			}
		}(r)
	}

	start := time.Now()
	for epoch := 0; epoch < epochs; epoch++ {
		if _, err := srv.Apply(sched.Batch(batch)); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("epoch %d: %w", epoch+1, err)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	return &churnPassResult{
		srv:     srv,
		st:      srv.Stats(),
		secs:    elapsed.Seconds(),
		queries: queries.Load(),
		routed:  routed.Load(),
	}, nil
}

// churnOne runs the campaign for one (profile, n) cell: a short baseline
// pass with witness patching disabled (the "before" recompute ratio and
// throughput), then the full measured pass with patching at its default
// scope cap.
func churnOne(tb *stats.Table, n int, prof serve.Profile, cfg Config) error {
	radius := scaleRadius(n, cfg.Region)
	inst, err := udg.ConnectedInstance(cfg.Seed, n, cfg.Region, radius, cfg.MaxTries)
	if err != nil {
		return fmt.Errorf("churn n=%d: %w", n, err)
	}
	batch := churnBatch(n)

	base, err := churnPass(inst, radius, prof, cfg, churnBaselineEpochs, batch, serve.WithPatchScope(-1))
	if err != nil {
		return fmt.Errorf("churn n=%d baseline: %w", n, err)
	}

	metrics := obs.NewMetrics()
	opts := []serve.Option{serve.WithTracer(metrics)}
	walDir := ""
	if cfg.DataDir != "" {
		walDir = filepath.Join(cfg.DataDir, fmt.Sprintf("n%d-%s", n, prof.Name))
		opts = append(opts, serve.WithWAL(walDir))
	}
	run, err := churnPass(inst, radius, prof, cfg, churnEpochs, batch, opts...)
	if err != nil {
		return fmt.Errorf("churn n=%d: %w", n, err)
	}
	srv, st := run.srv, run.st

	if n <= 2000 {
		conn, pldel, err := srv.State().Structures()
		if err != nil {
			return fmt.Errorf("churn n=%d: final structures: %w", n, err)
		}
		if err := srv.State().VerifyBackbone(conn, pldel); err != nil {
			return fmt.Errorf("churn n=%d: final backbone invalid: %w", n, err)
		}
	}

	routeOK := 0.0
	if run.queries > 0 {
		routeOK = float64(run.routed) / float64(run.queries)
	}

	// Durability half of the campaign: abandon the server without
	// shutdown (the file state a SIGKILL leaves) and time the crash
	// restart, asserting bit-exact recovery.
	walMB, recoverMS, replayed := "-", "-", "-"
	if walDir != "" {
		walMB = fmt.Sprintf("%.2f", float64(st.WALSegmentBytes)/(1<<20))
		recStart := time.Now()
		rec, info, err := serve.Recover(walDir)
		if err != nil {
			return fmt.Errorf("churn n=%d: recover: %w", n, err)
		}
		recoverMS = fmt.Sprintf("%.0f", time.Since(recStart).Seconds()*1e3)
		replayed = fmt.Sprintf("%d", info.Replayed)
		if got, want := rec.Current().Fingerprint(), srv.Current().Fingerprint(); got != want {
			return fmt.Errorf("churn n=%d: recovery not bit-exact: fingerprint %x, want %x", n, got, want)
		}
		rec.Close()
	}

	tb.AddRow(prof.Name, n, st.Epochs, st.Events, st.Applied,
		fmt.Sprintf("%.0f", float64(st.Applied)/run.secs),
		fmt.Sprintf("%.0f", float64(run.queries)/run.secs),
		fmt.Sprintf("%.3f", routeOK),
		fmt.Sprintf("%.2f", base.st.RecomputeRatio),
		fmt.Sprintf("%.0f", float64(base.st.Applied)/base.secs),
		fmt.Sprintf("%.2f", st.RecomputeRatio),
		st.PatchedEpochs, st.PatchFallbacks,
		st.Fallbacks, st.RoleChanges, srv.Current().Topology().Alive,
		walMB, recoverMS, replayed)
	return nil
}

// pickAlive rejection-samples an alive node of the epoch (at least a
// quarter of the nodes stay alive under the scheduler's quorum rule, so
// the loop is short); -1 when the epoch has no alive nodes.
func pickAlive(rng *rand.Rand, ep *serve.Epoch) int {
	for tries := 0; tries < 64; tries++ {
		if v := rng.Intn(ep.N()); ep.Alive(v) {
			return v
		}
	}
	for v := 0; v < ep.N(); v++ {
		if ep.Alive(v) {
			return v
		}
	}
	return -1
}
