package experiments

import (
	"fmt"
	"math"
	"time"

	"geospanner/internal/core"
	"geospanner/internal/stats"
	"geospanner/internal/udg"
)

// DefaultScaleNs is the node-count sweep of the kernel-scaling experiment.
func DefaultScaleNs() []int { return []int{500, 2000, 10000} }

// DefaultScaleShards is the shard-count sweep of the kernel-scaling
// experiment; 0 is the sequential baseline kernel.
func DefaultScaleShards() []int { return []int{0, 1, 2, 4, 8} }

// seqScaleCutoff is the largest n the sequential kernel is asked to run.
// Its per-round inbox scan makes it superlinear in practice (40 s per
// build at n=10k, hours at n=100k), so above the cutoff the sweep drops
// the sequential row and reports speedups relative to shards=1 — the
// same algorithm on the mailbox-routed kernel with one shard and no
// pool. Large-n runs (100k–1M, via -exp scale -n <value>) therefore
// measure what actually matters at that scale: sharding and the worker
// pool against the best single-threaded kernel.
const seqScaleCutoff = 20000

// scaleRadius picks a transmission radius for the scaling sweep that keeps
// the UDG average degree roughly constant (≈20, the paper's Table I
// density) as n grows in the fixed region, so per-round work scales with n
// rather than with n².
func scaleRadius(n int, region float64) float64 {
	// avg degree ≈ n·π·r²/region²; solve for r at degree 20.
	return region * math.Sqrt(20.0/(math.Pi*float64(n)))
}

// Scale measures the sharded simulation kernel against the sequential
// baseline: for each node count it builds one fixed instance with the
// sequential kernel (up to seqScaleCutoff) and then with each shard
// count, reporting wall-clock time and speedup relative to the first
// kernel in the sweep. cfg.Parallel bounds the sharded kernels' worker
// pool and is recorded in the kernel label; 0 leaves the GOMAXPROCS
// default. Outputs are verified identical across kernels — the
// experiment fails loudly if any kernel configuration ever changed a
// result — so the table is purely a performance profile. Trials are
// averaged per cell, capped at 3 and at 1 for n ≥ 50k.
func Scale(ns []int, shardCounts []int, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("n", "kernel", "wall_ms", "speedup", "rounds", "msgs")
	for _, n := range ns {
		radius := scaleRadius(n, cfg.Region)
		inst, err := udg.ConnectedInstance(cfg.Seed, n, cfg.Region, radius, cfg.MaxTries)
		if err != nil {
			return nil, fmt.Errorf("scale n=%d: %w", n, err)
		}
		trials := cfg.Trials
		if trials > 3 {
			trials = 3 // a scaling point is expensive; 3 repeats suffice
		}
		if n >= 50000 && trials > 1 {
			trials = 1 // one build per cell at 100k+; a run is seconds-stable
		}
		baseMS := 0.0
		baseMsgs, baseRounds := -1, -1
		for _, p := range shardCounts {
			var opts []core.BuildOption
			label := "sequential"
			if p > 0 {
				opts = append(opts, core.WithShards(p))
				label = fmt.Sprintf("shards=%d", p)
				if cfg.Parallel != 0 {
					opts = append(opts, core.WithParallelism(cfg.Parallel))
					label = fmt.Sprintf("shards=%d/par=%d", p, cfg.Parallel)
				}
			} else if n > seqScaleCutoff {
				continue // see seqScaleCutoff
			}
			var elapsed time.Duration
			var msgs, rounds int
			for trial := 0; trial < trials; trial++ {
				start := time.Now()
				res, err := core.Build(inst.UDG.Clone(), radius, opts...)
				if err != nil {
					return nil, fmt.Errorf("scale n=%d %s: %w", n, label, err)
				}
				elapsed += time.Since(start)
				msgs, rounds = res.MsgsLDel.Total(), res.Rounds.Total()
			}
			wallMS := float64(elapsed.Milliseconds()) / float64(trials)
			if baseMsgs < 0 {
				baseMS, baseMsgs, baseRounds = wallMS, msgs, rounds
			} else if msgs != baseMsgs || rounds != baseRounds {
				return nil, fmt.Errorf("scale n=%d %s: output diverged from baseline kernel (msgs %d vs %d, rounds %d vs %d)",
					n, label, msgs, baseMsgs, rounds, baseRounds)
			}
			speedup := 1.0
			if wallMS > 0 {
				speedup = baseMS / wallMS
			}
			tb.AddRow(n, label, fmt.Sprintf("%.1f", wallMS), fmt.Sprintf("%.2f", speedup), rounds, msgs)
		}
	}
	return tb, nil
}
