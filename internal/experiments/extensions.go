package experiments

import (
	"errors"
	"fmt"

	"geospanner/internal/cluster"
	"geospanner/internal/connector"
	"geospanner/internal/core"
	"geospanner/internal/graph"
	"geospanner/internal/ldel"
	"geospanner/internal/metrics"
	"geospanner/internal/proximity"
	"geospanner/internal/routing"
	"geospanner/internal/stats"
	"geospanner/internal/udg"
)

// Ablation compares the paper's Algorithm 1 (which elects 3-hop connectors
// in both orientations of every dominator pair, adding redundant paths)
// against a single-orientation variant. This quantifies the design choice
// DESIGN.md calls out: redundancy costs backbone size and messages but
// buys robustness and slightly better stretch.
func Ablation(n int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("variant", "backbone", "cds_edges", "ldel_edges",
		"comm_max", "comm_avg", "len_avg", "len_max", "hop_avg", "hop_max")
	variants := []struct {
		name string
		opts connector.Options
	}{
		{"bidirectional (paper)", connector.Options{}},
		{"single-orientation", connector.Options{SingleOrientation: true}},
	}
	type measure struct {
		backbone, cdsEdges, ldelEdges, commMax int
		commAvg                                float64
		s                                      metrics.StretchStats
	}
	for _, variant := range variants {
		variant := variant
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) (measure, error) {
			inst, err := udg.ConnectedInstance(cfg.Seed+int64(trial), n, cfg.Region, radius, cfg.MaxTries)
			if err != nil {
				return measure{}, fmt.Errorf("ablation trial %d: %w", trial, err)
			}
			res, msgs, err := buildWithOptions(inst, variant.opts)
			if err != nil {
				return measure{}, fmt.Errorf("ablation trial %d: %w", trial, err)
			}
			s := metrics.Stretch(inst.UDG, res.LDelICDSPrime, metrics.StretchOptions{DirectEdges: true})
			if s.Disconnected > 0 {
				return measure{}, fmt.Errorf("ablation: variant %q disconnected %d pairs", variant.name, s.Disconnected)
			}
			return measure{
				backbone:  len(res.Conn.Backbone),
				cdsEdges:  res.Conn.CDS.NumEdges(),
				ldelEdges: res.LDelICDS.NumEdges(),
				commMax:   msgs.Max(),
				commAvg:   msgs.Avg(),
				s:         s,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var backboneA, cdsA, ldelA, commMaxA, commAvgA stats.Accumulator
		var lenAvgA, lenMaxA, hopAvgA, hopMaxA stats.Accumulator
		for _, m := range trials {
			backboneA.AddInt(m.backbone)
			cdsA.AddInt(m.cdsEdges)
			ldelA.AddInt(m.ldelEdges)
			commMaxA.AddInt(m.commMax)
			commAvgA.Add(m.commAvg)
			lenAvgA.Add(m.s.LengthAvg)
			lenMaxA.Add(m.s.LengthMax)
			hopAvgA.Add(m.s.HopAvg)
			hopMaxA.Add(m.s.HopMax)
		}
		tb.AddRow(variant.name,
			backboneA.Summary().Mean, cdsA.Summary().Mean, ldelA.Summary().Mean,
			commMaxA.Summary().Max, commAvgA.Summary().Mean,
			lenAvgA.Summary().Mean, lenMaxA.Summary().Max,
			hopAvgA.Summary().Mean, hopMaxA.Summary().Max)
	}
	return tb, nil
}

// buildWithOptions runs the distributed pipeline with explicit connector
// options, mirroring core.Build's message accounting.
func buildWithOptions(inst *udg.Instance, opts connector.Options) (*core.Result, core.MessageStats, error) {
	cl, clNet, err := cluster.Run(inst.UDG, 0)
	if err != nil {
		return nil, core.MessageStats{}, err
	}
	conn, connNet, err := connector.RunOpts(inst.UDG, cl, 0, opts)
	if err != nil {
		return nil, core.MessageStats{}, err
	}
	ld, ldNet, err := ldel.Run(conn.ICDS, conn.InBackbone, inst.Radius, 0)
	if err != nil {
		return nil, core.MessageStats{}, err
	}
	prime := ld.PLDel.Clone()
	for v := 0; v < inst.UDG.N(); v++ {
		for _, u := range cl.DominatorsOf[v] {
			prime.AddEdge(v, u)
		}
	}
	res := &core.Result{
		UDG:           inst.UDG,
		Radius:        inst.Radius,
		Cluster:       cl,
		Conn:          conn,
		LDelICDS:      ld.PLDel,
		LDelICDSPrime: prime,
		Triangles:     ld.Triangles,
	}
	msgs := core.MessageStats{PerNode: make([]int, inst.UDG.N()), ByType: map[string]int{}}
	msgs.AddUniform(1, core.MsgTypeBeacon)
	msgs.AddNetwork(clNet)
	msgs.AddNetwork(connNet)
	msgs.AddUniform(1, core.MsgTypeRoleAnnounce)
	msgs.AddNetwork(ldNet)
	return res, msgs, nil
}

// RoutingQuality measures, beyond the paper's structural metrics, what the
// backbone buys for actual routing: delivery rate and hop quality of
// greedy forwarding, GFG (greedy + face recovery), and dominating-set
// routing, against the UDG shortest-hop optimum over all node pairs.
func RoutingQuality(n int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	// routeAgg is one strategy's subtotal over one trial's node pairs;
	// per-trial subtotals are summed in trial order, so the result is
	// identical for any worker count.
	type routeAgg struct {
		attempts  int
		delivered int
		ratioSum  float64
		ratioMax  float64
	}
	strategies := []string{"greedy/UDG", "greedy/GG", "GFG/GG", "DS/LDel(ICDS)"}
	index := make(map[string]int, len(strategies))
	for i, s := range strategies {
		index[s] = i
	}

	trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]routeAgg, error) {
		inst, err := udg.ConnectedInstance(cfg.Seed+int64(trial), n, cfg.Region, radius, cfg.MaxTries)
		if err != nil {
			return nil, fmt.Errorf("routing trial %d: %w", trial, err)
		}
		res, err := core.BuildCentralized(inst.UDG, inst.Radius)
		if err != nil {
			return nil, fmt.Errorf("routing trial %d: %w", trial, err)
		}
		gg := proximity.Gabriel(inst.UDG)
		// Plan each topology once per trial; the n^2 routing calls below
		// then share the frozen snapshots and rotation systems.
		ggPlanner := routing.NewPlanner(gg)
		ds := routing.NewDSRouter(inst.UDG, res.LDelICDS, res.Cluster.DominatorsOf, res.Conn.InBackbone)

		aggs := make([]routeAgg, len(strategies))
		record := func(name string, dst int, opt int, path []int, err error) {
			a := &aggs[index[name]]
			a.attempts++
			if err != nil {
				return
			}
			if len(path) == 0 || path[len(path)-1] != dst {
				return
			}
			a.delivered++
			r := float64(len(path)-1) / float64(opt)
			a.ratioSum += r
			if r > a.ratioMax {
				a.ratioMax = r
			}
		}

		for s := 0; s < inst.UDG.N(); s++ {
			optHops, _ := inst.UDG.BFS(s)
			for d := 0; d < inst.UDG.N(); d++ {
				if s == d || optHops[d] == graph.Unreachable {
					continue
				}
				path, err := routing.RouteGreedy(inst.UDG, s, d, 0)
				if err != nil && !errors.Is(err, routing.ErrGreedyStuck) {
					return nil, fmt.Errorf("greedy/UDG %d->%d: %w", s, d, err)
				}
				record("greedy/UDG", d, optHops[d], path, err)

				path, err = routing.RouteGreedy(gg, s, d, 0)
				if err != nil && !errors.Is(err, routing.ErrGreedyStuck) {
					return nil, fmt.Errorf("greedy/GG %d->%d: %w", s, d, err)
				}
				record("greedy/GG", d, optHops[d], path, err)

				path, err = ggPlanner.RouteGFG(s, d, 0)
				if err != nil {
					return nil, fmt.Errorf("GFG/GG %d->%d: %w", s, d, err)
				}
				record("GFG/GG", d, optHops[d], path, err)

				path, err = ds.Route(s, d, 0)
				if err != nil {
					return nil, fmt.Errorf("DS %d->%d: %w", s, d, err)
				}
				record("DS/LDel(ICDS)", d, optHops[d], path, err)
			}
		}
		return aggs, nil
	})
	if err != nil {
		return nil, err
	}

	totals := make([]routeAgg, len(strategies))
	for _, aggs := range trials {
		for i, a := range aggs {
			t := &totals[i]
			t.attempts += a.attempts
			t.delivered += a.delivered
			t.ratioSum += a.ratioSum
			if a.ratioMax > t.ratioMax {
				t.ratioMax = a.ratioMax
			}
		}
	}
	tb := stats.NewTable("strategy", "delivery_%", "hop_ratio_avg", "hop_ratio_max")
	for i, name := range strategies {
		a := &totals[i]
		rate := 100 * float64(a.delivered) / float64(a.attempts)
		avg := 0.0
		if a.delivered > 0 {
			avg = a.ratioSum / float64(a.delivered)
		}
		tb.AddRow(name, rate, avg, a.ratioMax)
	}
	return tb, nil
}

// PowerStretch reports the power stretch factors (Section I of the paper
// defines link cost as length^β, β ∈ [2,5]) of the flat and primed
// structures. The Gabriel graph has power stretch exactly 1 for β ≥ 2,
// which anchors the table.
func PowerStretch(n int, radius, beta float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("graph", "power_avg", "power_max")
	type row struct {
		name   string
		get    func(*instData) *graph.Graph
		direct bool
	}
	rows := []row{
		{"RNG", func(d *instData) *graph.Graph { return d.rng }, false},
		{"GG", func(d *instData) *graph.Graph { return d.gg }, false},
		{"LDel", func(d *instData) *graph.Graph { return d.flat }, false},
		{"CDS'", func(d *instData) *graph.Graph { return d.res.Conn.CDSPrime }, true},
		{"LDel(ICDS')", func(d *instData) *graph.Graph { return d.res.LDelICDSPrime }, true},
	}
	trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]metrics.StretchStats, error) {
		d, err := buildAll(cfg.Seed+int64(trial), n, radius, cfg, false)
		if err != nil {
			return nil, fmt.Errorf("power trial %d: %w", trial, err)
		}
		out := make([]metrics.StretchStats, len(rows))
		for i, r := range rows {
			out[i] = metrics.PowerStretch(d.inst.UDG, r.get(d), beta,
				metrics.StretchOptions{DirectEdges: r.direct})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	avgs := make([]stats.Accumulator, len(rows))
	maxes := make([]stats.Accumulator, len(rows))
	for _, ms := range trials {
		for i := range ms {
			avgs[i].Add(ms[i].LengthAvg)
			maxes[i].Add(ms[i].LengthMax)
		}
	}
	for i, r := range rows {
		tb.AddRow(r.name, avgs[i].Summary().Mean, maxes[i].Summary().Max)
	}
	return tb, nil
}

// LDelK sweeps the neighborhood parameter k of the localized Delaunay
// construction over the flat node set: k = 1 needs the planarization pass
// but only 1-hop knowledge; k >= 2 is planar by construction but costs
// k-hop position gossip. The paper picks k = 1; this table quantifies the
// trade.
func LDelK(n int, radius float64, ks []int, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("k", "ldel_edges", "pruned_edges", "planar_pre_prune", "len_avg", "len_max")
	type measure struct {
		edges, pruned int
		planarPre     bool
		s             metrics.StretchStats
	}
	for _, k := range ks {
		k := k
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) (measure, error) {
			inst, err := udg.ConnectedInstance(cfg.Seed+int64(trial), n, cfg.Region, radius, cfg.MaxTries)
			if err != nil {
				return measure{}, fmt.Errorf("ldelk trial %d: %w", trial, err)
			}
			res, err := ldel.CentralizedK(inst.UDG, nil, inst.Radius, k)
			if err != nil {
				return measure{}, fmt.Errorf("ldelk k=%d: %w", k, err)
			}
			return measure{
				edges:     res.LDel.NumEdges(),
				pruned:    res.LDel.NumEdges() - res.PLDel.NumEdges(),
				planarPre: res.LDel.IsPlanarEmbedding(),
				s:         metrics.Stretch(inst.UDG, res.PLDel, metrics.StretchOptions{}),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var edgesA, prunedA, lenAvgA, lenMaxA stats.Accumulator
		planarPre := true
		for _, m := range trials {
			edgesA.AddInt(m.edges)
			prunedA.AddInt(m.pruned)
			planarPre = planarPre && m.planarPre
			lenAvgA.Add(m.s.LengthAvg)
			lenMaxA.Add(m.s.LengthMax)
		}
		tb.AddRow(k, edgesA.Summary().Mean, prunedA.Summary().Mean,
			fmt.Sprint(planarPre), lenAvgA.Summary().Mean, lenMaxA.Summary().Max)
	}
	return tb, nil
}

// Robustness checks every pipeline guarantee across spatial placement
// models beyond the paper's uniform one: clustered, corridor, and ring
// deployments. For each model it reports structure sizes, stretch, and
// whether planarity/connectivity/degree invariants held on every trial.
func Robustness(n int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("distribution", "backbone", "ldel_edges", "deg_max",
		"len_avg", "hop_avg", "planar", "spanning")
	type measure struct {
		backbone, edges, degMax int
		planar                  bool
		s                       metrics.StretchStats
	}
	for _, dist := range []udg.Distribution{udg.Uniform, udg.Clustered, udg.Corridor, udg.Ring} {
		dist := dist
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) (measure, error) {
			inst, err := udg.ConnectedInstanceDist(cfg.Seed+int64(trial), dist, n, cfg.Region, radius, cfg.MaxTries)
			if err != nil {
				return measure{}, fmt.Errorf("robustness %v trial %d: %w", dist, trial, err)
			}
			res, err := core.BuildCentralized(inst.UDG, inst.Radius)
			if err != nil {
				return measure{}, fmt.Errorf("robustness %v trial %d: %w", dist, trial, err)
			}
			return measure{
				backbone: len(res.Conn.Backbone),
				edges:    res.LDelICDS.NumEdges(),
				degMax:   metrics.Degrees(res.LDelICDS, res.Conn.Backbone).Max,
				planar:   res.LDelICDS.IsPlanarEmbedding(),
				s:        metrics.Stretch(inst.UDG, res.LDelICDSPrime, metrics.StretchOptions{DirectEdges: true}),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var backboneA, edgesA, degA, lenA, hopA stats.Accumulator
		planar, spanning := true, true
		for _, m := range trials {
			backboneA.AddInt(m.backbone)
			edgesA.AddInt(m.edges)
			degA.AddInt(m.degMax)
			planar = planar && m.planar
			if m.s.Disconnected > 0 {
				spanning = false
			}
			lenA.Add(m.s.LengthAvg)
			hopA.Add(m.s.HopAvg)
		}
		tb.AddRow(dist.String(),
			backboneA.Summary().Mean, edgesA.Summary().Mean, degA.Summary().Max,
			lenA.Summary().Mean, hopA.Summary().Mean,
			fmt.Sprint(planar), fmt.Sprint(spanning))
	}
	return tb, nil
}

// Clusterheads compares clusterhead-selection criteria the paper's related
// work surveys (lowest ID — the paper's protocol — versus highest degree)
// through the full pipeline: dominator/backbone counts, backbone edges,
// and the resulting spanner quality.
func Clusterheads(n int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("criterion", "dominators", "backbone", "ldel_edges", "len_avg", "hop_avg")
	criteria := []struct {
		name  string
		elect func(g *graph.Graph) (*cluster.Result, error)
	}{
		{"lowest-ID (paper)", func(g *graph.Graph) (*cluster.Result, error) {
			return cluster.Centralized(g), nil
		}},
		{"highest-degree", func(g *graph.Graph) (*cluster.Result, error) {
			return cluster.CentralizedWeighted(g, cluster.DegreeWeights(g))
		}},
	}
	type measure struct {
		dominators, backbone, edges int
		s                           metrics.StretchStats
	}
	for _, crit := range criteria {
		crit := crit
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) (measure, error) {
			inst, err := udg.ConnectedInstance(cfg.Seed+int64(trial), n, cfg.Region, radius, cfg.MaxTries)
			if err != nil {
				return measure{}, fmt.Errorf("clusterheads trial %d: %w", trial, err)
			}
			cl, err := crit.elect(inst.UDG)
			if err != nil {
				return measure{}, err
			}
			conn := connector.Centralized(inst.UDG, cl)
			ld, err := ldel.Centralized(conn.ICDS, conn.InBackbone, inst.Radius)
			if err != nil {
				return measure{}, err
			}
			prime := ld.PLDel.Clone()
			for v := 0; v < inst.UDG.N(); v++ {
				for _, u := range cl.DominatorsOf[v] {
					prime.AddEdge(v, u)
				}
			}
			s := metrics.Stretch(inst.UDG, prime, metrics.StretchOptions{DirectEdges: true})
			if s.Disconnected > 0 {
				return measure{}, fmt.Errorf("clusterheads: %s disconnected %d pairs", crit.name, s.Disconnected)
			}
			return measure{
				dominators: len(cl.Dominators),
				backbone:   len(conn.Backbone),
				edges:      ld.PLDel.NumEdges(),
				s:          s,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var domA, backboneA, edgesA, lenA, hopA stats.Accumulator
		for _, m := range trials {
			domA.AddInt(m.dominators)
			backboneA.AddInt(m.backbone)
			edgesA.AddInt(m.edges)
			lenA.Add(m.s.LengthAvg)
			hopA.Add(m.s.HopAvg)
		}
		tb.AddRow(crit.name,
			domA.Summary().Mean, backboneA.Summary().Mean, edgesA.Summary().Mean,
			lenA.Summary().Mean, hopA.Summary().Mean)
	}
	return tb, nil
}
