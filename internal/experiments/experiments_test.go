package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Region: 200, Trials: 2, Seed: 1}
}

func TestTable1SmokeAndShape(t *testing.T) {
	tb, err := Table1(60, 60, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, name := range []string{"UDG", "RNG", "GG", "LDel", "CDS", "CDS'", "ICDS", "ICDS'", "LDel(ICDS)", "LDel(ICDS')"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing row %q in:\n%s", name, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 12 { // header + separator + 10 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "graph,deg_avg") {
		t.Fatalf("bad csv header: %q", csv[:40])
	}
}

func TestFig8Smoke(t *testing.T) {
	tb, err := Fig8([]int{30, 40}, 60, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.CSV()
	// 2 densities × 6 structures + header.
	if got := strings.Count(out, "\n"); got != 13 {
		t.Fatalf("row count = %d, want 13:\n%s", got, out)
	}
}

func TestFig9Smoke(t *testing.T) {
	tb, err := Fig9([]int{30}, 60, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(tb.CSV(), "\n"); got != 4 {
		t.Fatalf("row count = %d, want 4:\n%s", got, tb.CSV())
	}
}

func TestFig10Smoke(t *testing.T) {
	tb, err := Fig10([]int{30}, 60, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.CSV()
	if !strings.Contains(out, "LDel(ICDS)") || !strings.Contains(out, "CDS") {
		t.Fatalf("missing structures:\n%s", out)
	}
}

func TestFig11Fig12Smoke(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 1
	tb, err := Fig11([]float64{60}, 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(tb.CSV(), "\n"); got != 4 {
		t.Fatalf("fig11 rows = %d:\n%s", got, tb.CSV())
	}
	tb12, err := Fig12([]float64{60}, 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(tb12.CSV(), "\n"); got != 4 {
		t.Fatalf("fig12 rows = %d:\n%s", got, tb12.CSV())
	}
}

func TestFig6SVG(t *testing.T) {
	var b strings.Builder
	if err := Fig6SVG(&b, 1, 40, 60, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("not an svg")
	}
}

func TestFig7SVGs(t *testing.T) {
	svgs, err := Fig7SVGs(1, 40, 60, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(svgs) != 10 {
		t.Fatalf("got %d panels, want 10", len(svgs))
	}
	for name, data := range svgs {
		if !strings.Contains(string(data), "</svg>") {
			t.Fatalf("panel %s not an svg", name)
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	tb, err := Ablation(40, 60, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	if !strings.Contains(out, "bidirectional") || !strings.Contains(out, "single-orientation") {
		t.Fatalf("missing variants:\n%s", out)
	}
}

func TestRoutingQualitySmoke(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 1
	tb, err := RoutingQuality(30, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, s := range []string{"greedy/UDG", "greedy/GG", "GFG/GG", "DS/LDel(ICDS)"} {
		if !strings.Contains(out, s) {
			t.Fatalf("missing strategy %s:\n%s", s, out)
		}
	}
	// The guaranteed-delivery strategies must deliver everything.
	if !strings.Contains(out, "100.00") {
		t.Fatalf("no 100%% delivery row:\n%s", out)
	}
}

func TestPowerStretchSmoke(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 1
	tb, err := PowerStretch(40, 60, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	if !strings.Contains(out, "GG") || !strings.Contains(out, "LDel(ICDS')") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// Gabriel power stretch is exactly 1 for beta >= 2.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "GG ") && !strings.Contains(line, "1.00") {
			t.Fatalf("GG power stretch should be 1.00:\n%s", out)
		}
	}
}

func TestLDelKSmoke(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 1
	tb, err := LDelK(40, 60, []int{1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 2 data rows:\n%s", out)
	}
	// k=2 must be planar before pruning with nothing pruned.
	if !strings.Contains(lines[3], "true") {
		t.Fatalf("k=2 row should be planar pre-prune:\n%s", out)
	}
}

func TestRobustnessSmoke(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 1
	tb, err := Robustness(50, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, dist := range []string{"uniform", "clustered", "corridor", "ring"} {
		if !strings.Contains(out, dist) {
			t.Fatalf("missing %s row:\n%s", dist, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Fatalf("an invariant failed:\n%s", out)
	}
}

func TestClusterheadsSmoke(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 1
	tb, err := Clusterheads(40, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	if !strings.Contains(out, "lowest-ID") || !strings.Contains(out, "highest-degree") {
		t.Fatalf("missing criteria:\n%s", out)
	}
}
