package experiments

import (
	"fmt"

	"geospanner/internal/core"
	"geospanner/internal/obs"
	"geospanner/internal/stats"
	"geospanner/internal/udg"
)

// traceRingCap bounds each trial's in-memory event buffer. A build of a
// few hundred nodes emits well under a million events; the cap only
// guards against pathological instances.
const traceRingCap = 1 << 20

// Trace builds cfg.Trials random instances at density n with a tracer
// attached and returns the per-stage rollup table plus the merged event
// stream. Each trial traces into a private ring buffer; the streams are
// merged in trial order with Event.Trial stamped to the trial index, so
// the merged stream — like every other experiment output — is
// bit-identical for any Workers value (wall-clock fields excepted: the
// WallNS of stage_end events is genuinely nondeterministic and is the
// only field that varies between runs).
//
// The table reports, per pipeline stage, the rounds histogram, message
// totals broken down by delivery outcome, retransmission bookkeeping,
// and protocol state-transition counts, aggregated over all trials by an
// obs.Metrics sink replaying the merged stream.
func Trace(n int, radius float64, cfg Config) (*stats.Table, []obs.Event, error) {
	cfg = cfg.withDefaults()
	type traceMeasure struct {
		events []obs.Event
	}
	trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) (traceMeasure, error) {
		inst, err := udg.ConnectedInstance(cfg.Seed+int64(trial), n, cfg.Region, radius, cfg.MaxTries)
		if err != nil {
			return traceMeasure{}, fmt.Errorf("trace trial %d: %w", trial, err)
		}
		ring := obs.NewRing(traceRingCap)
		if _, err := core.Build(inst.UDG, radius, append(cfg.buildOptions(), core.WithTracer(ring))...); err != nil {
			return traceMeasure{}, fmt.Errorf("trace trial %d: %w", trial, err)
		}
		if ring.Total() > traceRingCap {
			return traceMeasure{}, fmt.Errorf("trace trial %d: event stream overflowed ring (%d events)", trial, ring.Total())
		}
		return traceMeasure{events: ring.Events()}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var merged []obs.Event
	m := obs.NewMetrics()
	for trial, t := range trials {
		for _, e := range t.events {
			e.Trial = trial
			merged = append(merged, e)
			m.Emit(e)
		}
	}
	tb := stats.NewTable("stage", "runs", "rounds_avg", "rounds_max",
		"sent", "delivered", "dropped", "retrans", "giveups", "states", "wall_ms_avg")
	for _, name := range m.Stages() {
		s := m.Stage(name)
		tb.AddRow(name, s.Runs,
			s.Rounds.Mean(), int(s.Rounds.Max),
			s.Sent, s.Delivered, s.Dropped,
			s.Retransmissions, s.GiveUps, s.StateChanges,
			s.Wall.Mean()/1e6)
	}
	return tb, merged, nil
}
