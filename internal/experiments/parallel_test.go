package experiments

import (
	"errors"
	"fmt"
	"testing"

	"geospanner/internal/stats"
)

// TestRunTrialsOrderAndErrors pins the runner contract directly: results
// arrive in trial order, and the reported error is the one a sequential run
// would hit first.
func TestRunTrialsOrderAndErrors(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		got, err := runTrials(workers, 20, func(trial int) (int, error) {
			return trial * trial, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 20 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	// Lowest failing index wins regardless of scheduling.
	for _, workers := range []int{1, 4} {
		_, err := runTrials(workers, 10, func(trial int) (int, error) {
			if trial == 3 || trial == 7 {
				return 0, fmt.Errorf("trial %d failed", trial)
			}
			return trial, nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Fatalf("workers=%d: err = %v, want trial 3 failed", workers, err)
		}
	}
	if out, err := runTrials(4, 0, func(int) (int, error) { return 0, errors.New("never") }); err != nil || out != nil {
		t.Fatalf("n=0 should be a no-op, got %v, %v", out, err)
	}
}

// TestWorkersBitIdentical is the acceptance check for the parallel
// experiment engine: every experiment's rendered output is byte-for-byte
// identical between a sequential run and a parallel one, floating-point
// accumulation included.
func TestWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq := Config{Region: 200, Trials: 3, Seed: 5}
	par := seq
	par.Workers = 4

	runs := []struct {
		name string
		fn   func(Config) (*stats.Table, error)
	}{
		{"Table1", func(c Config) (*stats.Table, error) { return Table1(40, 60, c) }},
		{"Fig8", func(c Config) (*stats.Table, error) { return Fig8([]int{20, 30}, 60, c) }},
		{"Fig9", func(c Config) (*stats.Table, error) { return Fig9([]int{20, 30}, 60, c) }},
		{"Fig10", func(c Config) (*stats.Table, error) { return Fig10([]int{20, 30}, 60, c) }},
		{"Fig11", func(c Config) (*stats.Table, error) { return Fig11([]float64{50, 60}, 60, c) }},
		{"Fig12", func(c Config) (*stats.Table, error) { return Fig12([]float64{50, 60}, 60, c) }},
		{"Ablation", func(c Config) (*stats.Table, error) { return Ablation(40, 60, c) }},
		{"RoutingQuality", func(c Config) (*stats.Table, error) { return RoutingQuality(25, 60, c) }},
		{"PowerStretch", func(c Config) (*stats.Table, error) { return PowerStretch(40, 60, 2, c) }},
		{"LDelK", func(c Config) (*stats.Table, error) { return LDelK(40, 60, []int{1, 2}, c) }},
		{"Robustness", func(c Config) (*stats.Table, error) { return Robustness(40, 60, c) }},
		{"Clusterheads", func(c Config) (*stats.Table, error) { return Clusterheads(40, 60, c) }},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			want, err := r.fn(seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			got, err := r.fn(par)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if got.CSV() != want.CSV() {
				t.Fatalf("parallel output differs from sequential:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
					want.CSV(), got.CSV())
			}
		})
	}
}
