// The chaos campaign: randomized fault schedules thrown at the
// partition-aware build, degraded-mode invariants checked after every one,
// and — when a schedule does break something — delta-debugging shrinking
// down to a minimal reproducing event sequence that can be saved under
// testdata/chaos/ and replayed as a regression test forever after.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"

	"geospanner/internal/core"
	"geospanner/internal/sim"
	"geospanner/internal/stats"
	"geospanner/internal/udg"
)

// ChaosEvent is one fault injected into a schedule. Kind selects the
// fields that matter:
//
//	crash  Node is silenced from Round on
//	cut    every node with |x - X| < Width/2 is silenced from Round on
//	       (a geometric band cut — the canonical partition generator)
//	loss   Bernoulli(Seed, Rate) link loss over the whole run
//	dup    Duplicate(Seed, Rate) copies over the whole run
type ChaosEvent struct {
	Kind  string  `json:"kind"`
	Node  int     `json:"node,omitempty"`
	Round int     `json:"round,omitempty"`
	X     float64 `json:"x,omitempty"`
	Width float64 `json:"width,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	Rate  float64 `json:"rate,omitempty"`
}

// ChaosSchedule is one self-contained chaos trial: the instance parameters
// (regenerated deterministically from Seed) plus the fault events composed
// over it. Schedules serialize to JSON so shrunk failures can be saved and
// replayed.
type ChaosSchedule struct {
	Seed   int64        `json:"seed"`
	N      int          `json:"n"`
	Region float64      `json:"region"`
	Radius float64      `json:"radius"`
	Events []ChaosEvent `json:"events"`
}

// instance regenerates the schedule's network.
func (s ChaosSchedule) instance() (*udg.Instance, error) {
	return udg.ConnectedInstance(s.Seed, s.N, s.Region, s.Radius, 5000)
}

// faults composes the schedule's events into one fault model over the
// given instance. Every call builds fresh model instances, so repeated
// builds under the same schedule see identical channels.
func (s ChaosSchedule) faults(inst *udg.Instance) sim.FaultModel {
	crashes := make(map[int]int)
	var models []sim.FaultModel
	for _, e := range s.Events {
		switch e.Kind {
		case "crash":
			if e.Node >= 0 && e.Node < s.N {
				if r, ok := crashes[e.Node]; !ok || e.Round < r {
					crashes[e.Node] = e.Round
				}
			}
		case "cut":
			for v := 0; v < inst.UDG.N(); v++ {
				x := inst.UDG.Point(v).X
				if x > e.X-e.Width/2 && x < e.X+e.Width/2 {
					if r, ok := crashes[v]; !ok || e.Round < r {
						crashes[v] = e.Round
					}
				}
			}
		case "loss":
			models = append(models, sim.Bernoulli(e.Seed, e.Rate))
		case "dup":
			models = append(models, sim.Duplicate(e.Seed, e.Rate))
		}
	}
	if len(crashes) > 0 {
		models = append(models, sim.CrashAt(crashes))
	}
	if len(models) == 0 {
		return nil
	}
	if len(models) == 1 {
		return models[0]
	}
	return sim.Compose(models...)
}

// chaosMaxRounds bounds every stage so wedged components fail fast into
// the health report instead of burning the default budget.
const chaosMaxRounds = 200

// chaosBuild runs one partial build under the schedule. Extra options
// select the kernel configuration (shards, parallelism) without
// changing what the campaign verifies — the contract is kernel-blind.
func chaosBuild(s ChaosSchedule, inst *udg.Instance, extra ...core.BuildOption) (*core.Result, error) {
	opts := []core.BuildOption{
		core.WithPartialResults(),
		core.WithMaxRounds(chaosMaxRounds),
		core.WithReliability(sim.ReliableConfig{MaxRetries: 3}),
	}
	if fm := s.faults(inst); fm != nil {
		opts = append(opts, core.WithFaults(fm))
	}
	opts = append(opts, extra...)
	return core.Build(inst.UDG.Clone(), inst.Radius, opts...)
}

// CheckSchedule runs the schedule through the partition-aware build and
// verifies the degraded-mode contract:
//
//   - the build returns a partial result, never an error;
//   - every complete component satisfies the paper's invariants and no
//     structure edge touches a dead node or crosses components
//     (core.VerifyPartial);
//   - the health report's accounting is internally consistent (live + dead
//     = n, give-up ledger matches the Reliable rollup);
//   - a second build under the same schedule is bit-identical.
//
// A nil return means the schedule was survived correctly. Extra build
// options pick the kernel configuration under test (e.g.
// core.WithShards + core.WithParallelism); the contract itself is the
// same for every kernel.
func CheckSchedule(s ChaosSchedule, extra ...core.BuildOption) error {
	inst, err := s.instance()
	if err != nil {
		return fmt.Errorf("chaos: instance: %w", err)
	}
	res, err := chaosBuild(s, inst, extra...)
	if err != nil {
		return fmt.Errorf("chaos: partial build errored: %w", err)
	}
	if res.Health == nil {
		return fmt.Errorf("chaos: partial build returned no health report")
	}
	if err := core.VerifyPartial(res); err != nil {
		return fmt.Errorf("chaos: invariants: %w", err)
	}
	if got := res.Health.LiveNodes() + len(res.Health.DeadNodes); got != s.N {
		return fmt.Errorf("chaos: live+dead = %d, want n = %d", got, s.N)
	}
	if res.Reliable.GaveUp != res.Health.GaveUpSlots() {
		return fmt.Errorf("chaos: give-up ledger (%d) disagrees with reliable rollup (%d)",
			res.Health.GaveUpSlots(), res.Reliable.GaveUp)
	}
	res2, err := chaosBuild(s, inst, extra...)
	if err != nil {
		return fmt.Errorf("chaos: repeat build errored: %w", err)
	}
	if !reflect.DeepEqual(res.Health, res2.Health) {
		return fmt.Errorf("chaos: health report not deterministic")
	}
	if !res.LDelICDS.Equal(res2.LDelICDS) || !res.LDelICDSPrime.Equal(res2.LDelICDSPrime) {
		return fmt.Errorf("chaos: output graphs not deterministic")
	}
	if !reflect.DeepEqual(res.MsgsLDel, res2.MsgsLDel) {
		return fmt.Errorf("chaos: message accounting not deterministic")
	}
	return nil
}

// genSchedule draws a random schedule with the given number of fault
// events over a random instance size. The radius is drawn above the
// connectivity threshold for the drawn n (≈ sqrt(region²·ln n / (π·n)) for
// uniform placement) so instance generation is feasible, but close enough
// to it that band cuts partition the survivors.
func genSchedule(r *rand.Rand, seed int64, region float64, events int) ChaosSchedule {
	n := 20 + r.Intn(81) // [20, 100]
	rmin := 1.15 * math.Sqrt(region*region*math.Log(float64(n))/(math.Pi*float64(n)))
	s := ChaosSchedule{
		Seed:   seed,
		N:      n,
		Region: region,
		Radius: rmin + r.Float64()*15,
	}
	for i := 0; i < events; i++ {
		switch r.Intn(4) {
		case 0:
			s.Events = append(s.Events, ChaosEvent{Kind: "crash", Node: r.Intn(s.N), Round: 0})
		case 1:
			s.Events = append(s.Events, ChaosEvent{
				Kind: "cut", X: region * (0.2 + 0.6*r.Float64()),
				Width: region * (0.05 + 0.15*r.Float64()), Round: 0,
			})
		case 2:
			s.Events = append(s.Events, ChaosEvent{
				Kind: "loss", Seed: r.Int63(), Rate: 0.05 + 0.35*r.Float64(),
			})
		default:
			s.Events = append(s.Events, ChaosEvent{
				Kind: "dup", Seed: r.Int63(), Rate: 0.05 + 0.25*r.Float64(),
			})
		}
	}
	return s
}

// ChaosFailure is one campaign failure: the schedule that broke the
// contract, its shrunk minimal reproduction, and the failure message.
type ChaosFailure struct {
	Original ChaosSchedule `json:"original"`
	Shrunk   ChaosSchedule `json:"shrunk"`
	Err      string        `json:"err"`
}

// Shrink minimizes a failing schedule's event list with ddmin-style delta
// debugging: it removes event chunks at successively finer granularity,
// keeping every removal under which failing(s) still holds, until no
// single event can be removed. It returns the minimal schedule and the
// number of predicate evaluations spent.
func Shrink(s ChaosSchedule, failing func(ChaosSchedule) bool) (ChaosSchedule, int) {
	evals := 0
	check := func(events []ChaosEvent) bool {
		evals++
		t := s
		t.Events = events
		return failing(t)
	}
	events := s.Events
	chunk := (len(events) + 1) / 2
	for chunk >= 1 && len(events) > 0 {
		removed := false
		for lo := 0; lo < len(events); lo += chunk {
			hi := lo + chunk
			if hi > len(events) {
				hi = len(events)
			}
			trial := make([]ChaosEvent, 0, len(events)-(hi-lo))
			trial = append(trial, events[:lo]...)
			trial = append(trial, events[hi:]...)
			if check(trial) {
				events = trial
				removed = true
				lo -= chunk // the window shifted under us; retry this offset
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk = (chunk + 1) / 2
		} else if chunk > len(events) {
			chunk = (len(events) + 1) / 2
		}
	}
	s.Events = events
	return s, evals
}

// Chaos runs the fault campaign: for each schedule intensity (number of
// composed fault events), cfg.Trials random schedules are generated,
// survived, and checked. Failing schedules are shrunk to minimal
// reproductions and returned for saving under testdata/chaos/.
//
// Columns:
//
//	events      fault events composed per schedule
//	failures    schedules that broke the degraded-mode contract (want 0)
//	dead        avg nodes crashed by the schedule
//	comps       avg live components
//	complete    avg components finishing the full pipeline
//	uncovered   avg live nodes left without a dominator
//	giveups     avg abandoned retransmission slots
//	stuck       avg nodes stuck in a wedged stage
func Chaos(intensities []int, cfg Config) (*stats.Table, []ChaosFailure, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("events", "failures", "dead", "comps", "complete",
		"uncovered", "giveups", "stuck")
	var failures []ChaosFailure
	type measure struct {
		fail                *ChaosFailure
		dead, comps         int
		complete, uncovered int
		giveups, stuck      int
	}
	for _, events := range intensities {
		events := events
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) (measure, error) {
			seed := cfg.Seed + int64(events*10000+trial)
			r := rand.New(rand.NewSource(seed))
			s := genSchedule(r, seed, cfg.Region, events)
			kernel := cfg.buildOptions()
			if err := CheckSchedule(s, kernel...); err != nil {
				shrunk, _ := Shrink(s, func(t ChaosSchedule) bool {
					return CheckSchedule(t, kernel...) != nil
				})
				return measure{fail: &ChaosFailure{
					Original: s, Shrunk: shrunk, Err: err.Error(),
				}}, nil
			}
			inst, err := s.instance()
			if err != nil {
				return measure{}, err
			}
			res, err := chaosBuild(s, inst, kernel...)
			if err != nil {
				return measure{}, err
			}
			h := res.Health
			return measure{
				dead: len(h.DeadNodes), comps: len(h.Components),
				complete: h.CompleteComponents(), uncovered: len(h.UncoveredNodes),
				giveups: h.GaveUpSlots(), stuck: len(h.Stuck),
			}, nil
		})
		if err != nil {
			return nil, failures, err
		}
		var deadA, compsA, completeA, uncovA, giveA, stuckA stats.Accumulator
		fails := 0
		for _, m := range trials {
			if m.fail != nil {
				fails++
				failures = append(failures, *m.fail)
				continue
			}
			deadA.Add(float64(m.dead))
			compsA.Add(float64(m.comps))
			completeA.Add(float64(m.complete))
			uncovA.Add(float64(m.uncovered))
			giveA.Add(float64(m.giveups))
			stuckA.Add(float64(m.stuck))
		}
		tb.AddRow(events, fails, deadA.Summary().Mean, compsA.Summary().Mean,
			completeA.Summary().Mean, uncovA.Summary().Mean,
			giveA.Summary().Mean, stuckA.Summary().Mean)
	}
	return tb, failures, nil
}

// DefaultChaosIntensities is the fault-event sweep of the -exp chaos
// campaign.
func DefaultChaosIntensities() []int { return []int{1, 2, 4, 6} }

// ShrinkSelfTest proves the shrinker on a known minimal core: it builds a
// schedule of padding events around two that jointly trigger a synthetic
// failure predicate, shrinks it, and reports the sizes. The shrunk
// schedule must contain exactly the two triggering events — if the
// shrinker ever regresses, the chaos-smoke gate catches it before a real
// failure needs minimizing.
func ShrinkSelfTest(seed int64) (orig, shrunk, evals int, err error) {
	r := rand.New(rand.NewSource(seed))
	s := genSchedule(r, seed, DefaultRegion, 24)
	// Plant the minimal core: a specific crash and a specific cut whose
	// conjunction the predicate treats as "failing".
	s.Events[5] = ChaosEvent{Kind: "crash", Node: 7, Round: 3}
	s.Events[17] = ChaosEvent{Kind: "cut", X: 99, Width: 13, Round: 1}
	failing := func(t ChaosSchedule) bool {
		hasCrash, hasCut := false, false
		for _, e := range t.Events {
			if e.Kind == "crash" && e.Node == 7 && e.Round == 3 {
				hasCrash = true
			}
			if e.Kind == "cut" && e.X == 99 {
				hasCut = true
			}
		}
		return hasCrash && hasCut
	}
	if !failing(s) {
		return 0, 0, 0, fmt.Errorf("chaos: self-test schedule does not fail")
	}
	min, evals := Shrink(s, failing)
	if len(min.Events) != 2 {
		return len(s.Events), len(min.Events), evals,
			fmt.Errorf("chaos: shrink left %d events, want 2", len(min.Events))
	}
	if !failing(min) {
		return len(s.Events), len(min.Events), evals,
			fmt.Errorf("chaos: shrunk schedule no longer fails")
	}
	return len(s.Events), len(min.Events), evals, nil
}

// SaveFailures writes each shrunk chaos failure as an indented JSON file
// (chaos-fail-<i>.json under dir) loadable by LoadSchedule — the format of
// the testdata/chaos regression corpus.
func SaveFailures(dir string, failures []ChaosFailure) ([]string, error) {
	var paths []string
	for i, f := range failures {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return paths, err
		}
		path := fmt.Sprintf("%s/chaos-fail-%d.json", dir, i)
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// LoadSchedule reads a schedule (or a saved ChaosFailure, whose shrunk
// schedule is used) from a JSON file.
func LoadSchedule(path string) (ChaosSchedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ChaosSchedule{}, err
	}
	var f ChaosFailure
	if err := json.Unmarshal(data, &f); err == nil && len(f.Shrunk.Events) > 0 {
		return f.Shrunk, nil
	}
	var s ChaosSchedule
	if err := json.Unmarshal(data, &s); err != nil {
		return ChaosSchedule{}, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return s, nil
}
