package experiments

import (
	"fmt"

	"geospanner/internal/core"
	"geospanner/internal/sim"
	"geospanner/internal/stats"
	"geospanner/internal/udg"
)

// DefaultLossRates is the per-link loss-rate sweep of the -loss
// experiment.
func DefaultLossRates() []float64 { return []float64{0, 0.05, 0.1, 0.2} }

// Loss quantifies what loss tolerance costs: the full distributed
// construction runs under the Reliable shim on a Bernoulli-lossy channel
// at each rate, and the table reports message overhead and round inflation
// versus the plain lossless run, plus the fraction of trials whose
// LDel(ICDS') output was bit-identical to the lossless build (which must
// be 1 at every rate — the shim's correctness guarantee, continuously
// re-measured rather than assumed).
//
// Columns:
//
//	loss        per-link Bernoulli loss probability
//	identical   fraction of trials bit-identical to the lossless output
//	msgs_plain  avg protocol messages of the plain lossless run
//	envelopes   avg radio broadcasts of the reliable run (shim envelopes)
//	retrans     avg slot retransmissions within those envelopes
//	msg_ovh     envelopes / msgs_plain
//	rounds_pln  avg simulator rounds of the plain run (all stages)
//	rounds      avg simulator rounds of the reliable lossy run
//	round_infl  rounds / rounds_pln
func Loss(n int, radius float64, rates []float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("loss", "identical", "msgs_plain", "envelopes",
		"retrans", "msg_ovh", "rounds_pln", "rounds", "round_infl")
	type measure struct {
		identical              bool
		plainMsgs, plainRounds int
		envelopes, retrans     int
		rounds                 int
	}
	for _, rate := range rates {
		rate := rate
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) (measure, error) {
			seed := cfg.Seed + int64(trial)
			inst, err := udg.ConnectedInstance(seed, n, cfg.Region, radius, cfg.MaxTries)
			if err != nil {
				return measure{}, fmt.Errorf("loss trial %d: %w", trial, err)
			}
			plain, err := core.Build(inst.UDG, inst.Radius, cfg.buildOptions()...)
			if err != nil {
				return measure{}, fmt.Errorf("loss trial %d (plain): %w", trial, err)
			}
			lossy, err := core.Build(inst.UDG.Clone(), inst.Radius,
				append(cfg.buildOptions(),
					core.WithReliability(sim.ReliableConfig{}),
					core.WithFaults(sim.Bernoulli(seed*131+int64(rate*1000), rate)))...)
			if err != nil {
				return measure{}, fmt.Errorf("loss trial %d (rate %g): %w", trial, rate, err)
			}
			return measure{
				identical: lossy.LDelICDSPrime.Equal(plain.LDelICDSPrime) &&
					lossy.LDelICDS.Equal(plain.LDelICDS),
				plainMsgs:   plain.MsgsLDel.Total(),
				plainRounds: plain.Rounds.Total(),
				envelopes:   lossy.Reliable.Envelopes,
				retrans:     lossy.Reliable.Retransmissions,
				rounds:      lossy.Rounds.Total(),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var identA, plainMsgsA, envA, retransA, plainRoundsA, roundsA stats.Accumulator
		for _, m := range trials {
			if m.identical {
				identA.Add(1)
			} else {
				identA.Add(0)
			}
			plainMsgsA.AddInt(m.plainMsgs)
			envA.AddInt(m.envelopes)
			retransA.AddInt(m.retrans)
			plainRoundsA.AddInt(m.plainRounds)
			roundsA.AddInt(m.rounds)
		}
		msgOvh := 0.0
		if plainMsgsA.Summary().Mean > 0 {
			msgOvh = envA.Summary().Mean / plainMsgsA.Summary().Mean
		}
		roundInfl := 0.0
		if plainRoundsA.Summary().Mean > 0 {
			roundInfl = roundsA.Summary().Mean / plainRoundsA.Summary().Mean
		}
		tb.AddRow(fmt.Sprintf("%.2f", rate),
			identA.Summary().Mean, plainMsgsA.Summary().Mean, envA.Summary().Mean,
			retransA.Summary().Mean, msgOvh,
			plainRoundsA.Summary().Mean, roundsA.Summary().Mean, roundInfl)
	}
	return tb, nil
}
