package experiments

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// TestChaosCorpusRegression replays every saved schedule under
// testdata/chaos through the full degraded-mode contract check. The corpus
// holds shrunk reproductions of past chaos failures plus hand-picked nasty
// schedules; a failure here means a fixed bug has come back.
func TestChaosCorpusRegression(t *testing.T) {
	paths, err := filepath.Glob("testdata/chaos/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("empty chaos corpus")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := LoadSchedule(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckSchedule(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosCampaignSmoke runs a tiny campaign and requires zero contract
// failures.
func TestChaosCampaignSmoke(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	tb, failures, err := Chaos([]int{1, 3}, Config{Trials: trials, Seed: 99, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			t.Errorf("schedule broke the contract (%s); shrunk to %d events: %+v",
				f.Err, len(f.Shrunk.Events), f.Shrunk.Events)
		}
	}
	if tb == nil || len(tb.CSV()) == 0 {
		t.Fatal("campaign table empty")
	}
}

// TestShrinkSelfTest pins the shrinker's contract: a planted two-event
// core inside a 24-event schedule must shrink to exactly those two events,
// comfortably under the campaign's eight-event acceptance bound.
func TestShrinkSelfTest(t *testing.T) {
	orig, shrunk, evals, err := ShrinkSelfTest(1)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk > 8 {
		t.Fatalf("shrunk schedule has %d events, want <= 8", shrunk)
	}
	if shrunk != 2 {
		t.Fatalf("shrunk schedule has %d events, want the planted core of 2", shrunk)
	}
	if orig != 24 {
		t.Fatalf("self-test schedule has %d events, want 24", orig)
	}
	t.Logf("shrink: %d -> %d events in %d evaluations", orig, shrunk, evals)
}

// TestShrinkMinimality: on random subset-failure predicates, Shrink must
// always reach a 1-minimal result — removing any single remaining event
// makes the predicate pass.
func TestShrinkMinimality(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		s := genSchedule(r, int64(trial), DefaultRegion, 12)
		// The failure core: a random subset of event indices, identified
		// by value equality against the original events.
		coreSize := 1 + r.Intn(3)
		core := map[int]bool{}
		for len(core) < coreSize {
			core[r.Intn(len(s.Events))] = true
		}
		var coreEvents []ChaosEvent
		for i := range s.Events {
			if core[i] {
				coreEvents = append(coreEvents, s.Events[i])
			}
		}
		failing := func(t ChaosSchedule) bool {
			for _, want := range coreEvents {
				found := false
				for _, e := range t.Events {
					if reflect.DeepEqual(e, want) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		min, _ := Shrink(s, failing)
		if !failing(min) {
			t.Fatalf("trial %d: shrunk schedule no longer fails", trial)
		}
		for i := range min.Events {
			reduced := append(append([]ChaosEvent{}, min.Events[:i]...), min.Events[i+1:]...)
			probe := min
			probe.Events = reduced
			if failing(probe) {
				t.Fatalf("trial %d: shrunk schedule not 1-minimal (event %d removable)", trial, i)
			}
		}
	}
}

// TestChaosScheduleRoundTrip: schedules survive the JSON save/load cycle.
func TestChaosScheduleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := genSchedule(r, 3, DefaultRegion, 5)
	dir := t.TempDir()
	paths, err := SaveFailures(dir, []ChaosFailure{{Original: s, Shrunk: s, Err: "synthetic"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	loaded, err := LoadSchedule(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, s) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", loaded, s)
	}
}
