package experiments

import "sync"

// runTrials executes fn for every trial index in [0, n) and returns the
// per-trial results in trial order. With workers <= 1 the trials run
// sequentially on the calling goroutine; with workers > 1 they run on a
// pool of that many goroutines.
//
// Determinism contract: fn(i) must depend only on i (every experiment
// seeds its instance generator from the trial index), and callers fold the
// returned slice into their accumulators sequentially, in trial order.
// Under that discipline the worker count changes only the wall-clock
// schedule, never the result — parallel output is bit-identical to
// sequential, floating-point accumulation order included.
//
// When trials fail, the error of the lowest failing trial index is
// returned, matching what a sequential run would report first.
func runTrials[T any](workers, n int, fn func(trial int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
