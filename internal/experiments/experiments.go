// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV): Table I (topology quality measurements),
// Figures 6–7 (topology pictures), Figures 8–10 (degree, spanning ratio,
// and communication cost versus node density), and Figures 11–12 (spanning
// ratio, communication cost, and degree versus transmission radius).
//
// The defaults encode the calibrated substitutions documented in DESIGN.md:
// nodes uniform in a 200×200 square, transmission radius 60 for the density
// sweeps (n = 20..100) and Table I (n = 100, matching the paper's UDG
// average degree of ≈21), radius 20..60 for the radius sweeps (n = 500),
// and instances resampled until the unit disk graph is connected.
package experiments

import (
	"fmt"
	"io"

	"geospanner/internal/core"
	"geospanner/internal/graph"
	"geospanner/internal/ldel"
	"geospanner/internal/metrics"
	"geospanner/internal/proximity"
	"geospanner/internal/stats"
	"geospanner/internal/udg"
	"geospanner/internal/viz"
)

// Config carries the shared experiment parameters.
type Config struct {
	// Region is the side length of the square deployment area.
	Region float64
	// Trials is the number of random vertex sets per configuration.
	Trials int
	// Seed seeds the instance generator; trial i uses Seed + i.
	Seed int64
	// MaxTries bounds connectivity resampling per instance (0 = default).
	MaxTries int
	// Workers is the number of goroutines running trials concurrently
	// (0 or 1 = sequential). Results are bit-identical for any value:
	// each trial is seeded independently and trial results are folded
	// into the aggregates in trial order regardless of completion order.
	Workers int
	// Shards is the shard count of each build's simulation kernel
	// (core.WithShards); 0 keeps the sequential kernel. Like Workers, it
	// changes only wall-clock time, never results.
	Shards int
	// Parallel bounds the sharded kernel's worker pool
	// (core.WithParallelism); 0 = GOMAXPROCS. No effect without Shards.
	Parallel int
	// DataDir, when set, runs the churn campaign's service durably: each
	// node count logs its epochs to a write-ahead log under this root and
	// the campaign measures crash recovery (restart time, bit-exactness)
	// on top of the usual throughput numbers. Empty = not durable.
	DataDir string
	// Profile selects the churn campaign's event mix: "move", "mixed",
	// "join-heavy", or "all" to sweep every built-in profile. Empty =
	// mixed (the historical schedule).
	Profile string
}

// buildOptions returns the per-build options implied by the config.
func (c Config) buildOptions() []core.BuildOption {
	var opts []core.BuildOption
	if c.Shards > 0 {
		opts = append(opts, core.WithShards(c.Shards))
		if c.Parallel != 0 {
			opts = append(opts, core.WithParallelism(c.Parallel))
		}
	}
	return opts
}

// Defaults for the paper's setup.
const (
	DefaultRegion      = 200.0
	DefaultRadius      = 60.0
	DefaultTable1N     = 100
	DefaultFigRadiusN  = 500
	DefaultTable1Count = 100
)

// DefaultDensities is the node-count sweep of Figures 8–10.
func DefaultDensities() []int { return []int{20, 30, 40, 50, 60, 70, 80, 90, 100} }

// DefaultRadii is the transmission-radius sweep of Figures 11–12.
func DefaultRadii() []float64 { return []float64{20, 25, 30, 35, 40, 45, 50, 55, 60} }

func (c Config) withDefaults() Config {
	if c.Region == 0 {
		c.Region = DefaultRegion
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.MaxTries == 0 {
		c.MaxTries = 5000
	}
	return c
}

// instData bundles one instance with every structure measured by Table I.
type instData struct {
	inst *udg.Instance
	res  *core.Result
	rng  *graph.Graph
	gg   *graph.Graph
	flat *graph.Graph // PLDel over all nodes (the paper's LDel row)
	st   *metrics.Stretcher
}

// stretcher returns the instance's base-distance precomputation, built on
// first use and shared by every structure measured against this UDG
// (Table I measures up to seven structures per instance).
func (d *instData) stretcher() *metrics.Stretcher {
	if d.st == nil {
		d.st = metrics.NewStretcher(d.inst.UDG)
	}
	return d.st
}

func buildAll(seed int64, n int, radius float64, cfg Config, distributed bool) (*instData, error) {
	inst, err := udg.ConnectedInstance(seed, n, cfg.Region, radius, cfg.MaxTries)
	if err != nil {
		return nil, err
	}
	var res *core.Result
	if distributed {
		res, err = core.Build(inst.UDG, radius, cfg.buildOptions()...)
	} else {
		res, err = core.BuildCentralized(inst.UDG, radius)
	}
	if err != nil {
		return nil, err
	}
	flat, err := ldel.Centralized(inst.UDG, nil, radius)
	if err != nil {
		return nil, err
	}
	return &instData{
		inst: inst,
		res:  res,
		rng:  proximity.RNG(inst.UDG),
		gg:   proximity.Gabriel(inst.UDG),
		flat: flat.PLDel,
	}, nil
}

// stretchMode selects how (and whether) stretch factors are measured.
type stretchMode int

const (
	stretchNone   stretchMode = iota // backbone-only graphs: no stretch
	stretchPlain                     // flat spanning subgraphs
	stretchDirect                    // primed graphs: direct-edge rule
)

// structSpec describes one Table I row.
type structSpec struct {
	name    string
	get     func(*instData) *graph.Graph
	nodes   func(*instData) []int // nil = all nodes
	stretch stretchMode
}

// allNodes selects degree statistics over every node, matching the paper's
// Table I convention: the backbone graphs' average degree is 2·edges/n over
// all n nodes (back-solved from the readable Table I entries, e.g. CDS
// deg_avg 1.09 = 2·54.4/100), and the maximum is unaffected since
// non-backbone nodes are isolated in those graphs.
func allNodes(*instData) []int { return nil }

func table1Specs() []structSpec {
	return []structSpec{
		{"UDG", func(d *instData) *graph.Graph { return d.inst.UDG }, allNodes, stretchNone},
		{"RNG", func(d *instData) *graph.Graph { return d.rng }, allNodes, stretchPlain},
		{"GG", func(d *instData) *graph.Graph { return d.gg }, allNodes, stretchPlain},
		{"LDel", func(d *instData) *graph.Graph { return d.flat }, allNodes, stretchPlain},
		{"CDS", func(d *instData) *graph.Graph { return d.res.Conn.CDS }, allNodes, stretchNone},
		{"CDS'", func(d *instData) *graph.Graph { return d.res.Conn.CDSPrime }, allNodes, stretchDirect},
		{"ICDS", func(d *instData) *graph.Graph { return d.res.Conn.ICDS }, allNodes, stretchNone},
		{"ICDS'", func(d *instData) *graph.Graph { return d.res.Conn.ICDSPrime }, allNodes, stretchDirect},
		{"LDel(ICDS)", func(d *instData) *graph.Graph { return d.res.LDelICDS }, allNodes, stretchNone},
		{"LDel(ICDS')", func(d *instData) *graph.Graph { return d.res.LDelICDSPrime }, allNodes, stretchDirect},
	}
}

// rowAccum aggregates one structure's measurements across instances the
// way the paper does: averages of per-instance averages, maxima of
// per-instance maxima.
type rowAccum struct {
	degAvg, degMax  stats.Accumulator
	lenAvg, lenMax  stats.Accumulator
	hopAvg, hopMax  stats.Accumulator
	edges           stats.Accumulator
	measuredStretch bool
}

// specMeasure is one trial's measurement of one structure — the value a
// worker goroutine computes; folding into rowAccum happens sequentially in
// trial order so that parallel runs accumulate identically to sequential.
type specMeasure struct {
	degAvg   float64
	degMax   int
	edges    int
	stretch  metrics.StretchStats
	measured bool
}

func measureSpec(d *instData, spec structSpec) specMeasure {
	g := spec.get(d)
	deg := metrics.Degrees(g, spec.nodes(d))
	m := specMeasure{degAvg: deg.Avg, degMax: deg.Max, edges: g.NumEdges()}
	if spec.stretch == stretchNone {
		return m
	}
	m.measured = true
	m.stretch = d.stretcher().Stretch(g, metrics.StretchOptions{
		DirectEdges: spec.stretch == stretchDirect,
	})
	return m
}

func measureSpecs(d *instData, specs []structSpec) []specMeasure {
	out := make([]specMeasure, len(specs))
	for i := range specs {
		out[i] = measureSpec(d, specs[i])
	}
	return out
}

func (a *rowAccum) fold(m specMeasure) {
	a.degAvg.Add(m.degAvg)
	a.degMax.AddInt(m.degMax)
	a.edges.AddInt(m.edges)
	if !m.measured {
		return
	}
	a.measuredStretch = true
	a.lenAvg.Add(m.stretch.LengthAvg)
	a.lenMax.Add(m.stretch.LengthMax)
	a.hopAvg.Add(m.stretch.HopAvg)
	a.hopMax.Add(m.stretch.HopMax)
}

// foldSpecTrials replays per-trial measurements into fresh accumulators in
// trial order.
func foldSpecTrials(trials [][]specMeasure, nspecs int) []rowAccum {
	accums := make([]rowAccum, nspecs)
	for _, ms := range trials {
		for i := range ms {
			accums[i].fold(ms[i])
		}
	}
	return accums
}

// Table1 regenerates Table I: topology quality measurements for every
// structure at the given density.
func Table1(n int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	specs := table1Specs()
	trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]specMeasure, error) {
		d, err := buildAll(cfg.Seed+int64(trial), n, radius, cfg, false)
		if err != nil {
			return nil, fmt.Errorf("table1 trial %d: %w", trial, err)
		}
		return measureSpecs(d, specs), nil
	})
	if err != nil {
		return nil, err
	}
	accums := foldSpecTrials(trials, len(specs))
	tb := stats.NewTable("graph", "deg_avg", "deg_max", "len_avg", "len_max", "hop_avg", "hop_max", "edges")
	for i, spec := range specs {
		a := &accums[i]
		row := []any{
			spec.name,
			a.degAvg.Summary().Mean,
			a.degMax.Summary().Max,
		}
		if a.measuredStretch {
			row = append(row,
				a.lenAvg.Summary().Mean, a.lenMax.Summary().Max,
				a.hopAvg.Summary().Mean, a.hopMax.Summary().Max,
			)
		} else {
			row = append(row, "-", "-", "-", "-")
		}
		row = append(row, a.edges.Summary().Mean)
		tb.AddRow(row...)
	}
	return tb, nil
}

// Fig8 regenerates Figure 8: maximum and average node degree of the six
// backbone structures versus the number of nodes (long format: one row per
// (n, structure)).
func Fig8(ns []int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("n", "graph", "deg_max", "deg_avg")
	specs := fig8Specs()
	for _, n := range ns {
		n := n
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]specMeasure, error) {
			d, err := buildAll(cfg.Seed+int64(1000*n+trial), n, radius, cfg, false)
			if err != nil {
				return nil, fmt.Errorf("fig8 n=%d trial %d: %w", n, trial, err)
			}
			return measureSpecs(d, specs), nil
		})
		if err != nil {
			return nil, err
		}
		accums := foldSpecTrials(trials, len(specs))
		for i, spec := range specs {
			tb.AddRow(n, spec.name, accums[i].degMax.Summary().Max, accums[i].degAvg.Summary().Mean)
		}
	}
	return tb, nil
}

func fig8Specs() []structSpec {
	return []structSpec{
		{"CDS", func(d *instData) *graph.Graph { return d.res.Conn.CDS }, allNodes, stretchNone},
		{"CDS'", func(d *instData) *graph.Graph { return d.res.Conn.CDSPrime }, allNodes, stretchNone},
		{"ICDS", func(d *instData) *graph.Graph { return d.res.Conn.ICDS }, allNodes, stretchNone},
		{"ICDS'", func(d *instData) *graph.Graph { return d.res.Conn.ICDSPrime }, allNodes, stretchNone},
		{"LDel(ICDS)", func(d *instData) *graph.Graph { return d.res.LDelICDS }, allNodes, stretchNone},
		{"LDel(ICDS')", func(d *instData) *graph.Graph { return d.res.LDelICDSPrime }, allNodes, stretchNone},
	}
}

func primedSpecs() []structSpec {
	return []structSpec{
		{"CDS'", func(d *instData) *graph.Graph { return d.res.Conn.CDSPrime }, allNodes, stretchDirect},
		{"ICDS'", func(d *instData) *graph.Graph { return d.res.Conn.ICDSPrime }, allNodes, stretchDirect},
		{"LDel(ICDS')", func(d *instData) *graph.Graph { return d.res.LDelICDSPrime }, allNodes, stretchDirect},
	}
}

// Fig9 regenerates Figure 9: maximum and average length and hop spanning
// ratios of the primed structures versus the number of nodes.
func Fig9(ns []int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("n", "graph", "len_max", "len_avg", "hop_max", "hop_avg")
	specs := primedSpecs()
	for _, n := range ns {
		n := n
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]specMeasure, error) {
			d, err := buildAll(cfg.Seed+int64(1000*n+trial), n, radius, cfg, false)
			if err != nil {
				return nil, fmt.Errorf("fig9 n=%d trial %d: %w", n, trial, err)
			}
			return measureSpecs(d, specs), nil
		})
		if err != nil {
			return nil, err
		}
		accums := foldSpecTrials(trials, len(specs))
		for i, spec := range specs {
			a := &accums[i]
			tb.AddRow(n, spec.name,
				a.lenMax.Summary().Max, a.lenAvg.Summary().Mean,
				a.hopMax.Summary().Max, a.hopAvg.Summary().Mean)
		}
	}
	return tb, nil
}

// commSpec names one cumulative communication-cost milestone.
type commSpec struct {
	name string
	get  func(*core.Result) core.MessageStats
}

func commSpecs() []commSpec {
	return []commSpec{
		{"CDS", func(r *core.Result) core.MessageStats { return r.MsgsCDS }},
		{"ICDS", func(r *core.Result) core.MessageStats { return r.MsgsICDS }},
		{"LDel(ICDS)", func(r *core.Result) core.MessageStats { return r.MsgsLDel }},
	}
}

// Fig10 regenerates Figure 10: maximum and average per-node communication
// cost to build CDS, ICDS, and LDel(ICDS), versus the number of nodes.
func Fig10(ns []int, radius float64, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("n", "graph", "comm_max", "comm_avg")
	specs := commSpecs()
	for _, n := range ns {
		n := n
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]commMeasure, error) {
			d, err := buildAll(cfg.Seed+int64(1000*n+trial), n, radius, cfg, true)
			if err != nil {
				return nil, fmt.Errorf("fig10 n=%d trial %d: %w", n, trial, err)
			}
			out := make([]commMeasure, len(specs))
			for i, spec := range specs {
				ms := spec.get(d.res)
				out[i] = commMeasure{max: ms.Max(), avg: ms.Avg()}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		maxA := make([]stats.Accumulator, len(specs))
		avgA := make([]stats.Accumulator, len(specs))
		for _, ms := range trials {
			for i := range ms {
				maxA[i].AddInt(ms[i].max)
				avgA[i].Add(ms[i].avg)
			}
		}
		for i, spec := range specs {
			tb.AddRow(n, spec.name, maxA[i].Summary().Max, avgA[i].Summary().Mean)
		}
	}
	return tb, nil
}

// commMeasure is one trial's communication-cost measurement of one
// milestone (plus the degree statistics Figure 12 reports alongside).
type commMeasure struct {
	max    int
	avg    float64
	degMax int
	degAvg float64
}

// Fig11 regenerates Figure 11: spanning ratios of the primed structures
// versus the transmission radius at fixed n.
func Fig11(radii []float64, n int, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("radius", "graph", "len_max", "len_avg", "hop_max", "hop_avg")
	specs := primedSpecs()
	for _, r := range radii {
		r := r
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]specMeasure, error) {
			d, err := buildAll(cfg.Seed+int64(1000*int(r)+trial), n, r, cfg, false)
			if err != nil {
				return nil, fmt.Errorf("fig11 r=%g trial %d: %w", r, trial, err)
			}
			return measureSpecs(d, specs), nil
		})
		if err != nil {
			return nil, err
		}
		accums := foldSpecTrials(trials, len(specs))
		for i, spec := range specs {
			a := &accums[i]
			tb.AddRow(r, spec.name,
				a.lenMax.Summary().Max, a.lenAvg.Summary().Mean,
				a.hopMax.Summary().Max, a.hopAvg.Summary().Mean)
		}
	}
	return tb, nil
}

// Fig12 regenerates Figure 12: communication cost and node degree of the
// backbone structures versus the transmission radius at fixed n.
func Fig12(radii []float64, n int, cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tb := stats.NewTable("radius", "graph", "comm_max", "comm_avg", "deg_max", "deg_avg")
	specs := commSpecs()
	degOf := func(d *instData, name string) metrics.DegreeStats {
		switch name {
		case "CDS":
			return metrics.Degrees(d.res.Conn.CDS, nil)
		case "ICDS":
			return metrics.Degrees(d.res.Conn.ICDS, nil)
		default:
			return metrics.Degrees(d.res.LDelICDS, nil)
		}
	}
	for _, r := range radii {
		r := r
		trials, err := runTrials(cfg.Workers, cfg.Trials, func(trial int) ([]commMeasure, error) {
			d, err := buildAll(cfg.Seed+int64(1000*int(r)+trial), n, r, cfg, true)
			if err != nil {
				return nil, fmt.Errorf("fig12 r=%g trial %d: %w", r, trial, err)
			}
			out := make([]commMeasure, len(specs))
			for i, spec := range specs {
				ms := spec.get(d.res)
				deg := degOf(d, spec.name)
				out[i] = commMeasure{max: ms.Max(), avg: ms.Avg(), degMax: deg.Max, degAvg: deg.Avg}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		maxC := make([]stats.Accumulator, len(specs))
		avgC := make([]stats.Accumulator, len(specs))
		maxD := make([]stats.Accumulator, len(specs))
		avgD := make([]stats.Accumulator, len(specs))
		for _, ms := range trials {
			for i := range ms {
				maxC[i].AddInt(ms[i].max)
				avgC[i].Add(ms[i].avg)
				maxD[i].AddInt(ms[i].degMax)
				avgD[i].Add(ms[i].degAvg)
			}
		}
		for i, spec := range specs {
			tb.AddRow(r, spec.name,
				maxC[i].Summary().Max, avgC[i].Summary().Mean,
				maxD[i].Summary().Max, avgD[i].Summary().Mean)
		}
	}
	return tb, nil
}

// Fig6SVG writes the Figure 6 picture: one random unit disk graph.
func Fig6SVG(w io.Writer, seed int64, n int, radius float64, cfg Config) error {
	cfg = cfg.withDefaults()
	inst, err := udg.ConnectedInstance(seed, n, cfg.Region, radius, cfg.MaxTries)
	if err != nil {
		return err
	}
	d := viz.NewDrawing(cfg.Region)
	d.AddLayer(inst.UDG, viz.Style{Stroke: "#999999", StrokeWidth: 0.4, NodeFill: "#1f77b4", NodeRadius: 1.8})
	return d.WriteSVG(w)
}

// Fig7SVGs renders the Figure 7 panel: every derived topology of one
// instance, keyed by structure name. Dominators are drawn red, connectors
// orange, dominatees blue.
func Fig7SVGs(seed int64, n int, radius float64, cfg Config) (map[string][]byte, error) {
	cfg = cfg.withDefaults()
	d, err := buildAll(seed, n, radius, cfg, false)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	for _, spec := range table1Specs() {
		g := spec.get(d)
		draw := viz.NewDrawing(cfg.Region)
		draw.AddLayer(g, viz.Style{Stroke: "#555555", StrokeWidth: 0.5, NodeFill: "#1f77b4", NodeRadius: 1.8})
		for _, dom := range d.res.Cluster.Dominators {
			draw.MarkNode(dom, "#d62728")
		}
		for _, c := range d.res.Conn.Connectors {
			draw.MarkNode(c, "#ff7f0e")
		}
		var b writerBuf
		if err := draw.WriteSVG(&b); err != nil {
			return nil, err
		}
		out[spec.name] = b.bytes
	}
	return out, nil
}

type writerBuf struct{ bytes []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.bytes = append(w.bytes, p...)
	return len(p), nil
}
