package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRingKeepsTail(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindRound, Round: i + 1})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, want := range []int{3, 4, 5} {
		if evs[i].Round != want {
			t.Fatalf("event %d round = %d, want %d", i, evs[i].Round, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: KindSend, From: 0})
	r.Emit(Event{Kind: KindSend, From: 1})
	evs := r.Events()
	if len(evs) != 2 || evs[0].From != 0 || evs[1].From != 1 {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	in := []Event{
		{Kind: KindStageStart, Stage: "cluster", From: NoNode, To: NoNode, N: 10},
		{Kind: KindSend, Stage: "cluster", Round: 1, Type: "IamDominator", From: 0, To: NoNode, Bytes: 2},
		{Kind: KindStageEnd, Stage: "cluster", Round: 4, From: NoNode, To: NoNode, N: 85, WallNS: 12345},
	}
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(in) {
		t.Fatalf("got %d lines, want %d", len(lines), len(in))
	}
	for i, line := range lines {
		e, err := DecodeJSONL([]byte(line), true)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e != in[i] {
			t.Fatalf("line %d: round-trip mismatch\n got %+v\nwant %+v", i, e, in[i])
		}
	}
}

func TestJSONLOmitWall(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.OmitWall = true
	j.Emit(Event{Kind: KindStageEnd, Stage: "x", From: NoNode, To: NoNode, WallNS: 999})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wall_ns") {
		t.Fatalf("OmitWall leaked wall time: %s", buf.String())
	}
}

func TestDecodeJSONLStrictRejectsUnknown(t *testing.T) {
	if _, err := DecodeJSONL([]byte(`{"kind":"send","from":0,"to":-1,"bogus":1}`), true); err == nil {
		t.Fatal("unknown field accepted in strict mode")
	}
	if _, err := DecodeJSONL([]byte(`{"kind":"martian","from":-1,"to":-1}`), true); err == nil {
		t.Fatal("unknown kind accepted in strict mode")
	}
	if _, err := DecodeJSONL([]byte(`{"from":-1,"to":-1}`), true); err == nil {
		t.Fatal("missing kind accepted in strict mode")
	}
	// Non-strict decoding tolerates both for forward compatibility.
	if _, err := DecodeJSONL([]byte(`{"kind":"martian","bogus":1}`), false); err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 7, 8, 100} {
		h.Add(v)
	}
	if h.Count != 9 || h.Max != 100 {
		t.Fatalf("count=%d max=%d", h.Count, h.Max)
	}
	// bucket 0 = {0}, 1 = {1}, 2 = [2,4), 3 = [4,8), 4 = [8,16), 7 = [64,128)
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[2] != 2 ||
		h.Buckets[3] != 2 || h.Buckets[4] != 1 || h.Buckets[7] != 1 {
		t.Fatalf("unexpected buckets %v", h.Buckets[:8])
	}
	if q := h.Quantile(0.5); q < 2 || q > 3 {
		t.Fatalf("p50 = %d, want in [2,3]", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d, want 100", q)
	}
	if s := h.String(); !strings.Contains(s, "n=9") {
		t.Fatalf("unexpected String: %s", s)
	}
}

func TestMetricsRollup(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Kind: KindStageStart, Stage: "cluster", N: 10})
	m.Emit(Event{Kind: KindSend, Stage: "cluster", Type: "IamDominator", From: 0, Bytes: 4})
	m.Emit(Event{Kind: KindSend, Stage: "cluster", Type: "IamDominatee", From: 1, Bytes: 6})
	m.Emit(Event{Kind: KindDeliver, Stage: "cluster", From: 0, To: 1, N: 2})
	m.Emit(Event{Kind: KindDrop, Stage: "cluster", From: 0, To: 2})
	m.Emit(Event{Kind: KindRound, Stage: "cluster", Round: 1, Sent: 2, Delivered: 2})
	m.Emit(Event{Kind: KindState, Stage: "cluster", From: 0, Type: "dominator"})
	m.Emit(Event{Kind: KindRetransmit, Stage: "cluster", From: 3, N: 4})
	m.Emit(Event{Kind: KindGiveUp, Stage: "cluster", From: 3})
	m.Emit(Event{Kind: KindStageEnd, Stage: "cluster", Round: 5, N: 2, WallNS: 1000})

	s := m.Stage("cluster")
	if s.Runs != 1 || s.Sent != 2 || s.Delivered != 2 || s.Dropped != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Bytes != 10 || s.ByType["IamDominator"] != 1 || s.ByType["IamDominatee"] != 1 {
		t.Fatalf("type rollup: %+v", s)
	}
	if s.Retransmissions != 4 || s.GiveUps != 1 || s.StateChanges != 1 {
		t.Fatalf("shim rollup: %+v", s)
	}
	if s.Rounds.Max != 5 || s.Wall.Sum != 1000 {
		t.Fatalf("per-run rollup: %+v", s)
	}
	if got := m.Stages(); len(got) != 1 || got[0] != "cluster" {
		t.Fatalf("stages: %v", got)
	}
	if out := m.String(); !strings.Contains(out, "stage cluster") || !strings.Contains(out, "IamDominator") {
		t.Fatalf("String: %s", out)
	}
}

func TestShardMetricsRollup(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Kind: KindStageStart, Stage: "cluster", N: 100})
	// Four shard load reports: From = shard index, N = nodes owned,
	// Sent/Delivered carry mailbox-pool hits/misses, WallNS the shard's
	// cumulative deliver+tick wall time.
	m.Emit(Event{Kind: KindShard, Stage: "cluster", From: 0, N: 25, Sent: 90, Delivered: 10, WallNS: 1000})
	m.Emit(Event{Kind: KindShard, Stage: "cluster", From: 1, N: 25, Sent: 80, Delivered: 20, WallNS: 1000})
	m.Emit(Event{Kind: KindShard, Stage: "cluster", From: 2, N: 25, Sent: 70, Delivered: 30, WallNS: 1000})
	m.Emit(Event{Kind: KindShard, Stage: "cluster", From: 3, N: 25, Sent: 60, Delivered: 40, WallNS: 5000})

	s := m.Stage("cluster")
	if s.ShardReports != 4 {
		t.Fatalf("ShardReports = %d, want 4", s.ShardReports)
	}
	if s.ShardPoolHits != 300 || s.ShardPoolMisses != 100 {
		t.Fatalf("pool rollup: hits=%d misses=%d", s.ShardPoolHits, s.ShardPoolMisses)
	}
	if s.ShardMaxWall != 5000 || s.ShardWall.Count != 4 {
		t.Fatalf("wall rollup: max=%d count=%d", s.ShardMaxWall, s.ShardWall.Count)
	}
	out := m.String()
	if !strings.Contains(out, "shards=4") || !strings.Contains(out, "pool_hit=75%") {
		t.Fatalf("String missing shard line: %s", out)
	}
	// mean wall = 2000, slowest = 5000 → imbalance 2.50.
	if !strings.Contains(out, "imbalance=2.50") {
		t.Fatalf("String missing imbalance: %s", out)
	}

	// The shard kind survives the strict JSONL schema round trip.
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	in := Event{Kind: KindShard, Stage: "cluster", From: 2, To: NoNode, N: 25, Sent: 70, Delivered: 30, WallNS: 42}
	j.Emit(in)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	e, err := DecodeJSONL(bytes.TrimSpace(buf.Bytes()), true)
	if err != nil {
		t.Fatalf("strict decode of shard event: %v", err)
	}
	if e != in {
		t.Fatalf("round trip: got %+v want %+v", e, in)
	}
}

func TestMultiAndFunc(t *testing.T) {
	var got []Kind
	f := Func(func(e Event) { got = append(got, e.Kind) })
	r := NewRing(4)
	tr := Multi(nil, f, r)
	tr.Emit(Event{Kind: KindSend})
	tr.Emit(Event{Kind: KindRound})
	if len(got) != 2 || got[0] != KindSend {
		t.Fatalf("func sink: %v", got)
	}
	if len(r.Events()) != 2 {
		t.Fatalf("ring sink: %v", r.Events())
	}
}

type sizedMsg struct{}

func (sizedMsg) TraceBytes() int { return 42 }

func TestSizeOf(t *testing.T) {
	if n := SizeOf(sizedMsg{}); n != 42 {
		t.Fatalf("Sized: %d", n)
	}
	if n := SizeOf(struct{ A int }{7}); n <= 0 {
		t.Fatalf("fallback: %d", n)
	}
}
