package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Ring is an in-memory sink holding the most recent Cap events. It is the
// cheapest always-on sink: a full pipeline trace of a 100-node instance is
// a few tens of thousands of events, so a generously sized ring captures
// whole runs while a small one keeps only the tail — the part that
// explains a wedged run.
type Ring struct {
	mu    sync.Mutex
	cap   int
	buf   []Event // grows on demand up to cap, then wraps
	next  int
	full  bool
	total int
}

// NewRing returns a ring buffer keeping the last cap events (cap < 1 is
// raised to 1). The buffer grows as events arrive, so an over-provisioned
// capacity costs nothing until a trace actually fills it.
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{cap: cap}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if !r.full {
		r.buf = append(r.buf, e)
		r.full = len(r.buf) == r.cap
	} else {
		// buf is at capacity; overwrite the oldest. next points at it.
		r.buf[r.next] = e
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events emitted over the ring's lifetime,
// including those that have been overwritten.
func (r *Ring) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// JSONL streams events to w, one JSON object per line — the interchange
// format tools/tracecat replays and `make trace-smoke` validates. Writes
// are buffered; call Flush (or Close) when the run is over.
type JSONL struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer
	// OmitWall zeroes the WallNS field before encoding, making the output
	// byte-identical across runs of the same instance (the golden-trace
	// tests rely on it).
	OmitWall bool
	err      error
}

// NewJSONL returns a sink writing JSON lines to w. If w is also an
// io.Closer, Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit implements Tracer. Encoding errors are sticky and surfaced by
// Flush/Close.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if j.OmitWall {
		e.WallNS = 0
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Flush drains the buffer and reports the first error of the sink's life.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and, when the underlying writer is closable, closes it.
func (j *JSONL) Close() error {
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// DecodeJSONL parses one JSONL trace line. strict additionally rejects
// unknown fields and unknown event kinds — the schema check behind
// `tracecat -check`.
func DecodeJSONL(line []byte, strict bool) (Event, error) {
	var e Event
	// From/To default to NoNode so that omitted fields do not masquerade
	// as node 0.
	e.From, e.To = NoNode, NoNode
	if strict {
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return e, err
		}
		if e.Kind == "" {
			return e, fmt.Errorf("obs: event missing kind")
		}
		if !KnownKind(e.Kind) {
			return e, fmt.Errorf("obs: unknown event kind %q", e.Kind)
		}
		return e, nil
	}
	err := json.Unmarshal(line, &e)
	return e, err
}
