// Package obs is the observability layer of the protocol stack: a
// structured event model for everything a simulated run does (stage
// start/end with wall time, per-round message batches, individual
// send/deliver/drop decisions, protocol state transitions, the Reliable
// shim's retransmission and give-up activity, and quiescence-wait
// snapshots), a minimal Tracer sink contract, and built-in sinks — an
// in-memory ring buffer (Ring), a JSONL stream writer (JSONL), and a
// rollup aggregator (Metrics).
//
// The contract with the simulator is pay-for-use: a nil Tracer costs one
// predicted branch per hot-path operation and zero allocations; event
// construction happens only behind the nil check. Sinks must therefore
// tolerate being called from exactly one goroutine per simulated network;
// the built-in sinks additionally lock so that merged multi-worker use is
// safe.
//
// Determinism: every field of every event except WallNS is a pure function
// of the simulated run, so two runs of the same instance produce the same
// event stream (the property the golden-trace tests pin). WallNS is the
// one wall-clock field; sinks that need byte-identical output across runs
// strip it (see JSONL.OmitWall).
package obs

import "fmt"

// Kind names the event type. Kinds are stable strings (they appear in
// JSONL traces and golden files); add new kinds rather than renaming.
type Kind string

// The event kinds emitted by the simulator and protocol drivers.
const (
	// KindStageStart opens a protocol stage: Stage is the stage name and
	// N the number of nodes in the network.
	KindStageStart Kind = "stage_start"
	// KindStageEnd closes a stage: Round is the number of rounds executed,
	// N the total messages broadcast, WallNS the elapsed wall time, and
	// Note the error text when the stage failed.
	KindStageEnd Kind = "stage_end"
	// KindRound summarizes one executed round: Delivered message
	// deliveries happened and Sent broadcasts were issued during it.
	KindRound Kind = "round"
	// KindSend is one radio broadcast: From is the sender, Type the
	// message type, Bytes the encoded-size proxy of the payload.
	KindSend Kind = "send"
	// KindDeliver is the delivery of one broadcast at one receiver: N is
	// the number of copies the fault model produced (1 normally, more
	// under duplication).
	KindDeliver Kind = "deliver"
	// KindDrop is a fault-model loss: the broadcast From→To of Type was
	// not delivered.
	KindDrop Kind = "drop"
	// KindState is a protocol state transition at node From: Type is the
	// new state name (e.g. "dominator", "connector", "ldel:propose").
	KindState Kind = "state"
	// KindRetransmit reports that node From retransmitted N payload slots
	// of the Reliable shim in one flush.
	KindRetransmit Kind = "retransmit"
	// KindGiveUp reports that node From abandoned a slot after exhausting
	// its retries; Note identifies the slot.
	KindGiveUp Kind = "give_up"
	// KindQuiesceWait is a periodic snapshot of a network that has not yet
	// gone quiescent: N nodes were not Done and Sent messages were in
	// flight at Round.
	KindQuiesceWait Kind = "quiesce_wait"
	// KindStuck is the post-mortem of a run that exhausted its round
	// budget: one event per not-Done node From, with its self-diagnosis in
	// Note.
	KindStuck Kind = "stuck"
	// KindPartition opens a partition-aware (partial-results) build: N is
	// the number of live components and Sent the number of dead nodes.
	KindPartition Kind = "partition"
	// KindComponent closes one component of a partial build: N is the
	// component size, Round the total rounds its stages ran, and Note
	// "complete" or the name of the stage that failed.
	KindComponent Kind = "component"
	// KindShard is the sharded kernel's per-shard load report, emitted
	// once per shard at stage end when the run executed under WithShards:
	// From is the shard index, N the number of nodes the shard owns,
	// WallNS its cumulative deliver+tick wall time, and Sent/Delivered the
	// mailbox pool's hit/miss counts. Shard events describe the executor,
	// not the protocol — they are the one part of a trace that varies with
	// the shard count, so determinism comparisons across shard counts
	// strip them along with WallNS.
	KindShard Kind = "shard"
	// KindRepartition reports an occupancy-driven rebalance of the sharded
	// kernel's node ranges: one event per shard whenever the kernel moves
	// its contiguous ID boundaries, with From the shard index, N the
	// number of nodes the shard owns after the move, To the first owned
	// node ID, and Round the round after which the rebalance took effect.
	// Like KindShard, it describes the executor, not the protocol.
	KindRepartition Kind = "repartition"
	// KindEpoch closes one maintenance epoch of a long-lived topology
	// service: Round is the epoch sequence number, N the events applied,
	// Delivered the events rejected as no-ops, Sent the roles changed, and
	// Note how the backbone was brought current ("patched" when the cached
	// structures absorbed the batch, "recomputed" when they were rebuilt,
	// "fallback" when role churn forced a from-scratch re-clustering).
	// WallNS is the apply wall time — as everywhere, the one
	// nondeterministic field.
	KindEpoch Kind = "epoch"
	// KindSnapshot reports the immutable snapshot published for an epoch:
	// Round is the epoch, N the alive node count, Sent the live UDG edge
	// count, and Delivered the planar backbone edge count.
	KindSnapshot Kind = "snapshot"
	// KindDegraded marks a durable topology service crossing its
	// degraded-mode boundary: Note is "enter" when persistent storage
	// failure flips the service read-only and "exit" when a resync
	// restores the durable write path; Round is the epoch sequence at the
	// crossing.
	KindDegraded Kind = "degraded"
)

// knownKinds is the schema: the set of kinds a valid trace may contain.
var knownKinds = map[Kind]bool{
	KindStageStart: true, KindStageEnd: true, KindRound: true,
	KindSend: true, KindDeliver: true, KindDrop: true, KindState: true,
	KindRetransmit: true, KindGiveUp: true, KindQuiesceWait: true,
	KindStuck: true, KindPartition: true, KindComponent: true,
	KindShard: true, KindRepartition: true,
	KindEpoch: true, KindSnapshot: true, KindDegraded: true,
}

// KnownKind reports whether k is part of the trace schema.
func KnownKind(k Kind) bool { return knownKinds[k] }

// ExecutorKind reports whether k describes the execution machinery (shard
// load reports, re-partitioning) rather than the simulated protocol.
// Executor events legitimately vary with the shard count and worker pool,
// so determinism comparisons across kernel configurations strip them; the
// protocol-level stream that remains is bit-identical.
func ExecutorKind(k Kind) bool { return k == KindShard || k == KindRepartition }

// NoNode is the From/To value of events that do not concern a node.
const NoNode = -1

// Event is one trace record. Unused numeric fields are zero except From
// and To, which use NoNode (-1) so that node 0 remains representable.
type Event struct {
	// Trial tags the experiment trial (or BuildMany index) the event
	// belongs to when per-worker traces are merged; 0 for single runs.
	Trial int `json:"trial,omitempty"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Stage is the protocol stage ("cluster", "connector", "ldel", …).
	Stage string `json:"stage,omitempty"`
	// Round is the simulator round (or, for async runs, the event time).
	Round int `json:"round,omitempty"`
	// Type is the message type, or the state name for KindState.
	Type string `json:"type,omitempty"`
	// From is the sending (or transitioning, or stuck) node, NoNode if
	// not applicable.
	From int `json:"from"`
	// To is the receiving node, NoNode if not applicable.
	To int `json:"to"`
	// N is a kind-specific count (nodes, copies, slots, totals).
	N int `json:"n,omitempty"`
	// Bytes is the encoded-size proxy of a sent message.
	Bytes int `json:"bytes,omitempty"`
	// Sent and Delivered are the per-round counters of KindRound and
	// KindQuiesceWait events.
	Sent      int `json:"sent,omitempty"`
	Delivered int `json:"delivered,omitempty"`
	// WallNS is elapsed wall-clock nanoseconds (KindStageEnd only). It is
	// the only nondeterministic field of the model.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Note carries free-text diagnostics (error text, stuck reasons).
	Note string `json:"note,omitempty"`
}

// Tracer is the sink contract. Emit must not retain e beyond the call
// (sinks copy what they keep) and must not block the simulation.
type Tracer interface {
	Emit(e Event)
}

// Multi fans every event out to each sink in order.
func Multi(sinks ...Tracer) Tracer {
	// Flatten and drop nils so callers can compose optional sinks.
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

type multi []Tracer

// Emit implements Tracer.
func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Func adapts a function to the Tracer interface.
type Func func(e Event)

// Emit implements Tracer.
func (f Func) Emit(e Event) { f(e) }

// Sized is an optional message extension: a message that knows its
// encoded size reports it here and the simulator uses it as the Bytes
// proxy of its send events.
type Sized interface {
	TraceBytes() int
}

// SizeOf returns the bytes proxy of a message payload: TraceBytes when the
// value implements Sized, otherwise the length of its formatted value — a
// crude but deterministic stand-in for encoded size, good enough to rank
// message types by weight in a trace.
func SizeOf(v any) int {
	if s, ok := v.(Sized); ok {
		return s.TraceBytes()
	}
	return len(fmt.Sprintf("%v", v))
}
