package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram is a power-of-two-bucket histogram of non-negative integer
// samples: bucket 0 counts zeros, bucket i (i ≥ 1) counts values in
// [2^(i-1), 2^i). It is fixed-size, allocation-free after creation, and
// good to ~2× resolution — enough to see whether per-round message counts
// are flat (the paper's O(1)-per-round claim) or growing.
type Histogram struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [32]int64
}

// Add records one sample (negative samples clamp to 0).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bucketOf(v)]++
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 1
	for v > 1 && b < 31 {
		v >>= 1
		b++
	}
	return b
}

// bucketHigh is the inclusive upper bound of bucket i.
func bucketHigh(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// sample (q in [0,1]); it overestimates by at most 2×.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.Buckets {
		seen += h.Buckets[i]
		if seen >= rank {
			if hi := bucketHigh(i); hi < h.Max {
				return hi
			}
			return h.Max
		}
	}
	return h.Max
}

// String renders the non-empty buckets compactly, e.g.
// "n=9 mean=3.2 max=7 [1:2 2-3:4 4-7:3]".
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f max=%d [", h.Count, h.Mean(), h.Max)
	first := true
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		lo := int64(0)
		if i > 0 {
			lo = bucketHigh(i-1) + 1
		}
		hi := bucketHigh(i)
		if lo == hi {
			fmt.Fprintf(&b, "%d:%d", lo, c)
		} else {
			fmt.Fprintf(&b, "%d-%d:%d", lo, hi, c)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// StageMetrics is the rollup of every event a stage emitted, summed over
// however many runs (trials, workers) fed the Metrics sink.
type StageMetrics struct {
	// Runs counts stage_start events (one per network run).
	Runs int
	// Rounds is the per-run round-count distribution.
	Rounds Histogram
	// Wall is the per-run wall-time distribution in nanoseconds.
	Wall Histogram
	// RoundSent and RoundDelivered are per-round distributions of
	// broadcasts and deliveries — the paper's per-round cost profile.
	RoundSent      Histogram
	RoundDelivered Histogram
	// Sent, Delivered and Dropped total the individual message events.
	Sent, Delivered, Dropped int
	// Bytes totals the sent-message size proxies.
	Bytes int
	// ByType counts broadcasts by message type.
	ByType map[string]int
	// Retransmissions, GiveUps, StateChanges and Stuck count the
	// corresponding events.
	Retransmissions, GiveUps, StateChanges, Stuck int
	// Partitions counts partition events (one per partial build) and
	// Components / IncompleteComponents the per-component outcomes of
	// degraded-mode builds.
	Partitions, Components, IncompleteComponents int
	// ShardReports counts shard events, ShardWall is the per-shard
	// deliver+tick wall-time distribution (its max-vs-mean spread is the
	// load-imbalance signal), ShardMaxWall the single slowest shard seen,
	// and ShardPoolHits / ShardPoolMisses total the mailbox free-list
	// behavior across shards.
	ShardReports                   int
	ShardWall                      Histogram
	ShardMaxWall                   int64
	ShardPoolHits, ShardPoolMisses int
	// Repartitions counts per-shard repartition events: occupancy-driven
	// boundary moves of the sharded kernel.
	Repartitions int
	// Epochs counts maintenance epochs of a live topology service;
	// EpochEvents is the per-epoch applied-event distribution,
	// EpochRejected the total no-op events, EpochRoleChanges the total
	// role churn, and EpochRecomputes / EpochFallbacks the epochs whose
	// backbone was rebuilt (rather than patched in place) and the subset
	// that fell back to a from-scratch re-clustering. EpochPatches counts
	// the epochs a witness-scoped patch absorbed in place. Snapshots
	// counts published epoch snapshots.
	Epochs           int
	EpochEvents      Histogram
	EpochRejected    int
	EpochRoleChanges int
	EpochRecomputes  int
	EpochFallbacks   int
	EpochPatches     int
	Snapshots        int
	// DegradedEntries / DegradedExits count the service's crossings into
	// and out of read-only degraded mode (KindDegraded events).
	DegradedEntries int
	DegradedExits   int
}

// RecomputeRatio returns the fraction of epochs that rebuilt the backbone
// instead of patching the cached structures (0 when no epochs ran) — the
// headline metric of incremental maintenance.
func (s *StageMetrics) RecomputeRatio() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.EpochRecomputes) / float64(s.Epochs)
}

// Metrics is the rollup sink: it folds the event stream into per-stage
// counters and histograms. It implements Tracer and can also be fed after
// the fact by replaying recorded events, which is how merged multi-worker
// traces are summarized.
type Metrics struct {
	mu     sync.Mutex
	stages map[string]*StageMetrics
	order  []string
}

// NewMetrics returns an empty rollup sink.
func NewMetrics() *Metrics {
	return &Metrics{stages: make(map[string]*StageMetrics)}
}

func (m *Metrics) stage(name string) *StageMetrics {
	s := m.stages[name]
	if s == nil {
		s = &StageMetrics{ByType: make(map[string]int)}
		m.stages[name] = s
		m.order = append(m.order, name)
	}
	return s
}

// Emit implements Tracer.
func (m *Metrics) Emit(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stage(e.Stage)
	switch e.Kind {
	case KindStageStart:
		s.Runs++
	case KindStageEnd:
		s.Rounds.Add(int64(e.Round))
		s.Wall.Add(e.WallNS)
	case KindRound:
		s.RoundSent.Add(int64(e.Sent))
		s.RoundDelivered.Add(int64(e.Delivered))
	case KindSend:
		s.Sent++
		s.Bytes += e.Bytes
		s.ByType[e.Type]++
	case KindDeliver:
		s.Delivered += e.N
	case KindDrop:
		s.Dropped++
	case KindState:
		s.StateChanges++
	case KindRetransmit:
		s.Retransmissions += e.N
	case KindGiveUp:
		s.GiveUps++
	case KindStuck:
		s.Stuck++
	case KindPartition:
		s.Partitions++
	case KindComponent:
		s.Components++
		if e.Note != "complete" {
			s.IncompleteComponents++
		}
	case KindShard:
		s.ShardReports++
		s.ShardWall.Add(e.WallNS)
		if e.WallNS > s.ShardMaxWall {
			s.ShardMaxWall = e.WallNS
		}
		s.ShardPoolHits += e.Sent
		s.ShardPoolMisses += e.Delivered
	case KindRepartition:
		s.Repartitions++
	case KindEpoch:
		s.Epochs++
		s.EpochEvents.Add(int64(e.N))
		s.EpochRejected += e.Delivered
		s.EpochRoleChanges += e.Sent
		switch e.Note {
		case "patched":
			s.EpochPatches++
		case "recomputed":
			s.EpochRecomputes++
		case "fallback":
			s.EpochRecomputes++
			s.EpochFallbacks++
		}
	case KindSnapshot:
		s.Snapshots++
	case KindDegraded:
		if e.Note == "exit" {
			s.DegradedExits++
		} else {
			s.DegradedEntries++
		}
	}
}

// Stages returns the stage names in first-seen order.
func (m *Metrics) Stages() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Stage returns a copy of the named stage's rollup (zero value when the
// stage never emitted).
func (m *Metrics) Stage(name string) StageMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stages[name]
	if s == nil {
		return StageMetrics{ByType: map[string]int{}}
	}
	cp := *s
	cp.ByType = make(map[string]int, len(s.ByType))
	for k, v := range s.ByType {
		cp.ByType[k] = v
	}
	return cp
}

// String renders the rollup as a multi-line report: one block per stage
// with counters, the per-type send breakdown, and the per-round
// histograms.
func (m *Metrics) String() string {
	var b strings.Builder
	for _, name := range m.Stages() {
		s := m.Stage(name)
		label := name
		if label == "" {
			label = "(unnamed)"
		}
		fmt.Fprintf(&b, "stage %s: runs=%d rounds_avg=%.1f rounds_max=%d sent=%d delivered=%d dropped=%d retrans=%d giveup=%d states=%d stuck=%d wall_ms=%.2f\n",
			label, s.Runs, s.Rounds.Mean(), s.Rounds.Max, s.Sent,
			s.Delivered, s.Dropped, s.Retransmissions, s.GiveUps,
			s.StateChanges, s.Stuck, float64(s.Wall.Sum)/1e6)
		if s.Partitions > 0 {
			fmt.Fprintf(&b, "  partitions=%d components=%d incomplete=%d\n",
				s.Partitions, s.Components, s.IncompleteComponents)
		}
		if s.ShardReports > 0 {
			// Imbalance is slowest shard over mean shard: 1.00 = perfectly
			// balanced, 2.00 = one shard did twice the average work.
			imbalance := 1.0
			if mean := s.ShardWall.Mean(); mean > 0 {
				imbalance = float64(s.ShardMaxWall) / mean
			}
			hitRate := 0.0
			if tot := s.ShardPoolHits + s.ShardPoolMisses; tot > 0 {
				hitRate = float64(s.ShardPoolHits) / float64(tot)
			}
			fmt.Fprintf(&b, "  shards=%d imbalance=%.2f pool_hit=%.0f%% shard_wall %s\n",
				s.ShardReports, imbalance, hitRate*100, s.ShardWall.String())
		}
		if s.Epochs > 0 {
			fmt.Fprintf(&b, "  epochs=%d snapshots=%d recompute_ratio=%.2f patched=%d fallbacks=%d rejected=%d role_changes=%d applied %s\n",
				s.Epochs, s.Snapshots, s.RecomputeRatio(), s.EpochPatches,
				s.EpochFallbacks, s.EpochRejected, s.EpochRoleChanges,
				s.EpochEvents.String())
		}
		if s.DegradedEntries > 0 || s.DegradedExits > 0 {
			fmt.Fprintf(&b, "  degraded entries=%d exits=%d\n", s.DegradedEntries, s.DegradedExits)
		}
		types := make([]string, 0, len(s.ByType))
		for t := range s.ByType {
			types = append(types, t)
		}
		sort.Strings(types)
		for _, t := range types {
			fmt.Fprintf(&b, "  type %-14s %d\n", t, s.ByType[t])
		}
		fmt.Fprintf(&b, "  per-round sent      %s\n", s.RoundSent.String())
		fmt.Fprintf(&b, "  per-round delivered %s\n", s.RoundDelivered.String())
	}
	return b.String()
}
