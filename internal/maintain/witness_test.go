package maintain

import (
	"math/rand"
	"testing"

	"geospanner/internal/cluster"
	"geospanner/internal/geom"
	"geospanner/internal/udg"
)

// TestWitnessPatchFailRegression is the regression sweep for the
// witness-scope boundary: failing a NON-backbone dominatee looks inert,
// but the dead node may have been the losing candidate that blocked a
// larger-ID node in a connector election — its removal flips a decision
// two hops away. The pre-witness patch fast-path got exactly this wrong
// (it kept the cached CDS untouched); every fail and rejoin here must
// leave the patched structures bit-identical to a from-scratch rebuild.
func TestWitnessPatchFailRegression(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		s := newStateR(t, seed, 120, 45)
		s.PatchScopeFraction = 1
		conn, _, err := s.Structures()
		if err != nil {
			t.Fatal(err)
		}
		var victims []int
		for v := 0; v < s.N() && len(victims) < 6; v++ {
			if s.Status(v) == cluster.Dominatee && !conn.InBackbone[v] {
				victims = append(victims, v)
			}
		}
		for _, v := range victims {
			if !s.Alive(v) {
				continue
			}
			if _, err := s.Fail(v); err != nil {
				t.Fatal(err)
			}
			c, p, err := s.Structures()
			if err != nil {
				t.Fatalf("seed %d fail %d: %v", seed, v, err)
			}
			assertMatchesRebuild(t, s, c, p)
			if _, err := s.Recover(v); err != nil {
				t.Fatal(err)
			}
			c, p, err = s.Structures()
			if err != nil {
				t.Fatalf("seed %d rejoin %d: %v", seed, v, err)
			}
			assertMatchesRebuild(t, s, c, p)
		}
		if s.Recomputes != 1 {
			t.Fatalf("seed %d: Recomputes = %d, want 1 (every event patched)", seed, s.Recomputes)
		}
	}
}

// TestWitnessScopeBoundaryDistantElection demonstrates the boundary case
// the witness refactor exists for: a node joining or failing OUTSIDE the
// backbone changes the CDS anyway, because it enters (or leaves) the
// candidate set of an election between other nodes. The sweep requires at
// least one such distant flip to occur — so the oracle below is not
// vacuous — and bit-exact rebuild equality throughout.
func TestWitnessScopeBoundaryDistantElection(t *testing.T) {
	distantFlips := 0
	for seed := int64(1); seed <= 6; seed++ {
		s := newStateR(t, seed, 120, 45)
		s.PatchScopeFraction = 1
		conn, _, err := s.Structures()
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < s.N(); v++ {
			if s.Status(v) != cluster.Dominatee || conn.InBackbone[v] || !s.Alive(v) {
				continue
			}
			before := conn.CDS.Clone()
			if _, err := s.Fail(v); err != nil {
				t.Fatal(err)
			}
			c, p, err := s.Structures()
			if err != nil {
				t.Fatalf("seed %d fail %d: %v", seed, v, err)
			}
			if !before.Equal(c.CDS) {
				// A non-backbone node's failure moved a backbone election.
				distantFlips++
				assertMatchesRebuild(t, s, c, p)
			}
			if _, err := s.Recover(v); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Structures(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if distantFlips == 0 {
		t.Fatal("sweep never saw a non-backbone event move an election; the boundary oracle is vacuous")
	}
}

// newStateR is newState with an explicit radius.
func newStateR(t *testing.T, seed int64, n int, radius float64) *State {
	t.Helper()
	inst, err := udg.ConnectedInstance(seed, n, 200, radius, 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(inst.Points, inst.Radius)
}

// ChurnProfile weights the event mix of profileBatch.
type churnProfile struct {
	name string
	// Out of 10: rolls below move are moves, below toggle are
	// naive leave/crash-or-join toggles, the rest stream noise. joinBias
	// prefers reviving dead nodes in the toggle band.
	move, toggle int
	joinBias     bool
}

var churnProfiles = []churnProfile{
	{name: "move", move: 7, toggle: 9},
	{name: "mixed", move: 4, toggle: 8},
	{name: "join-heavy", move: 2, toggle: 8, joinBias: true},
}

// profileBatch is randomBatch with a configurable kind mix.
func profileBatch(rng *rand.Rand, s *State, region float64, k int, p churnProfile) (events []Event, wantApplied, wantRejected int) {
	alive, _ := s.Roles()
	pts := s.Positions()
	jitter := func(q geom.Point) geom.Point {
		step := s.Radius() / 2
		x := q.X + (rng.Float64()*2-1)*step
		y := q.Y + (rng.Float64()*2-1)*step
		return geom.Point{X: min(max(x, 0), region), Y: min(max(y, 0), region)}
	}
	aliveCount := 0
	var dead []int
	for v, a := range alive {
		if a {
			aliveCount++
		} else {
			dead = append(dead, v)
		}
	}
	for i := 0; i < k; i++ {
		v := rng.Intn(len(alive))
		switch roll := rng.Intn(10); {
		case roll < p.move:
			to := jitter(pts[v])
			pts[v] = to
			events = append(events, Event{Kind: EventMove, Node: v, To: to})
			wantApplied++
		case roll < p.toggle:
			if p.joinBias && len(dead) > 0 {
				v = dead[rng.Intn(len(dead))]
			}
			if alive[v] {
				if aliveCount <= 2 {
					i--
					continue
				}
				kind := EventLeave
				if roll%2 == 0 {
					kind = EventCrash
				}
				events = append(events, Event{Kind: kind, Node: v})
				alive[v] = false
				aliveCount--
				dead = append(dead, v)
			} else {
				events = append(events, Event{Kind: EventJoin, Node: v})
				alive[v] = true
				aliveCount++
				for j, d := range dead {
					if d == v {
						dead = append(dead[:j], dead[j+1:]...)
						break
					}
				}
			}
			wantApplied++
		default:
			if alive[v] {
				events = append(events, Event{Kind: EventJoin, Node: v})
			} else {
				events = append(events, Event{Kind: EventCrash, Node: v})
			}
			wantRejected++
		}
	}
	return events, wantApplied, wantRejected
}

// TestChurnPropertyMatrix sweeps churn profiles × network sizes with
// witness patching forced on (uncapped scope): after every epoch the
// patched structures must equal a from-scratch rebuild bit for bit, and
// across each run the patch path must actually fire. This is the matrix
// CI runs under -race.
func TestChurnPropertyMatrix(t *testing.T) {
	sizes := []struct {
		seed   int64
		n      int
		radius float64
		epochs int
	}{
		// Radius shrinks with n so the network keeps a multi-hop diameter —
		// the regime witness patching exists for.
		{seed: 31, n: 40, radius: 60, epochs: 6},
		{seed: 32, n: 90, radius: 45, epochs: 5},
		{seed: 33, n: 180, radius: 36, epochs: 4},
		{seed: 34, n: 350, radius: 28, epochs: 3},
	}
	for _, p := range churnProfiles {
		for _, tc := range sizes {
			t.Run(p.name, func(t *testing.T) {
				s := newStateR(t, tc.seed, tc.n, tc.radius)
				s.PatchScopeFraction = 1
				rng := rand.New(rand.NewSource(tc.seed * 77))
				for epoch := 1; epoch <= tc.epochs; epoch++ {
					k := 3 + rng.Intn(6)
					events, wantApplied, wantRejected := profileBatch(rng, s, 200, k, p)
					st := s.ApplyBatch(events, DefaultFallbackFraction)
					if st.Applied != wantApplied || st.Rejected != wantRejected {
						t.Fatalf("%s n=%d epoch %d: applied=%d rejected=%d, want %d/%d",
							p.name, tc.n, epoch, st.Applied, st.Rejected, wantApplied, wantRejected)
					}
					kindTotal := 0
					for _, kc := range st.ByKind {
						kindTotal += kc.Applied + kc.Rejected
					}
					if kindTotal != st.Events {
						t.Fatalf("%s n=%d epoch %d: ByKind sums to %d, want %d",
							p.name, tc.n, epoch, kindTotal, st.Events)
					}
					conn, pldel, err := s.Structures()
					if err != nil {
						t.Fatalf("%s n=%d epoch %d: %v", p.name, tc.n, epoch, err)
					}
					if err := s.VerifyBackbone(conn, pldel); err != nil {
						t.Fatalf("%s n=%d epoch %d: %v", p.name, tc.n, epoch, err)
					}
					assertMatchesRebuild(t, s, conn, pldel)
				}
				if s.Patches == 0 {
					t.Fatalf("%s n=%d: witness patching never fired", p.name, tc.n)
				}
			})
		}
	}
}
