// Epoch batching: the ingestion format of a long-lived topology service.
// A live network delivers churn as a stream of join/leave/move/crash
// events; the service cuts the stream into batches (epochs) and applies
// each batch to the maintained State in one step. ApplyBatch is the
// writer-side contract: events addressed to nodes in the wrong state are
// strict no-ops (they must not invalidate the cached structures, or the
// recompute-ratio metric the service reports would count phantom
// recomputations — the dedupe the regression tests pin), and a batch that
// churns too many roles falls back to a from-scratch re-clustering instead
// of compounding locally repaired, denser-than-minimal dominator sets.
package maintain

import (
	"fmt"
	"sort"

	"geospanner/internal/cluster"
	"geospanner/internal/connector"
	"geospanner/internal/geom"
	"geospanner/internal/graph"
	"geospanner/internal/udg"
)

// EventKind enumerates the churn events a live topology service ingests.
type EventKind uint8

// The churn event kinds. Leave and Crash are mechanically identical to the
// State (the node is gone either way); they are kept distinct because a
// trace that cannot tell graceful departures from failures is useless to
// an operator.
const (
	// EventJoin brings a failed (or never-started) node slot up at its
	// current position.
	EventJoin EventKind = iota
	// EventLeave takes an alive node down gracefully.
	EventLeave
	// EventCrash takes an alive node down abruptly.
	EventCrash
	// EventMove relocates a node to Event.To, alive or not.
	EventMove

	// NumEventKinds is the number of event kinds — the length of
	// BatchStats.ByKind and of any per-kind counter array built over it.
	NumEventKinds = int(EventMove) + 1
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventCrash:
		return "crash"
	case EventMove:
		return "move"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one churn event addressed to a node slot.
type Event struct {
	Kind EventKind
	Node int
	// To is the destination position of an EventMove; ignored otherwise.
	To geom.Point
}

// KindCount is the per-event-kind slice of one batch.
type KindCount struct {
	// Applied counts events of this kind that changed the state.
	Applied int
	// Rejected counts strict no-ops of this kind.
	Rejected int
}

// BatchStats summarizes one ApplyBatch call — the per-epoch numbers a
// topology service reports.
type BatchStats struct {
	// Events is the batch size; Applied + Rejected == Events.
	Events int
	// Applied counts events that changed the state.
	Applied int
	// Rejected counts strict no-ops: a leave/crash addressed to an
	// already-dead node, a join addressed to an alive one, or an
	// out-of-range node ID. Rejected events touch neither the roles nor
	// the cached structures.
	Rejected int
	// ByKind slices Applied/Rejected per event kind, indexed by EventKind
	// (join, leave, crash, move). Out-of-range node IDs and unknown kinds
	// count only in Rejected.
	ByKind [NumEventKinds]KindCount
	// RoleChanges totals the nodes whose clustering role changed across
	// the batch's applied events (the locality measure).
	RoleChanges int
	// Moves counts applied move events.
	Moves int
	// Fallback reports that the batch churned more than the fallback
	// fraction of alive nodes and the roles were re-clustered from
	// scratch.
	Fallback bool
}

// DefaultFallbackFraction is the role-churn fraction above which ApplyBatch
// abandons local repair for a batch and re-clusters from scratch. Local
// repair never demotes a dominator, so under sustained heavy churn the
// dominator set only densifies; re-clustering when a single batch touches
// a quarter of the network restores the lowest-ID MIS baseline.
const DefaultFallbackFraction = 0.25

// ApplyBatch applies one epoch's events in order and returns the batch
// summary. Events addressed to nodes in the wrong state are counted as
// Rejected and are complete no-ops. fallbackFrac is the role-churn
// fraction that triggers the from-scratch re-clustering (<= 0 disables the
// fallback; DefaultFallbackFraction is the service default).
func (s *State) ApplyBatch(events []Event, fallbackFrac float64) BatchStats {
	st := BatchStats{Events: len(events)}
	for _, e := range events {
		if e.Node < 0 || e.Node >= len(s.alive) {
			st.Rejected++
			continue
		}
		switch e.Kind {
		case EventJoin:
			if s.alive[e.Node] {
				// Guard before calling Recover: the error path is a no-op
				// too, but the batch loop must never construct errors for
				// expected stream noise.
				st.Rejected++
				st.ByKind[e.Kind].Rejected++
				continue
			}
			changed, err := s.Recover(e.Node)
			if err != nil {
				st.Rejected++
				st.ByKind[e.Kind].Rejected++
				continue
			}
			st.Applied++
			st.ByKind[e.Kind].Applied++
			st.RoleChanges += len(changed)
		case EventLeave, EventCrash:
			if !s.alive[e.Node] {
				// An already-dead target is stream noise (a crash report
				// racing a graceful leave). It must not reach Fail, and —
				// the dedupe contract — must not invalidate caches: the
				// next Structures call would otherwise count a recompute
				// for an event that changed nothing.
				st.Rejected++
				st.ByKind[e.Kind].Rejected++
				continue
			}
			changed, err := s.Fail(e.Node)
			if err != nil {
				st.Rejected++
				st.ByKind[e.Kind].Rejected++
				continue
			}
			st.Applied++
			st.ByKind[e.Kind].Applied++
			st.RoleChanges += len(changed)
		case EventMove:
			changed, err := s.Move(e.Node, e.To)
			if err != nil {
				st.Rejected++
				st.ByKind[e.Kind].Rejected++
				continue
			}
			st.Applied++
			st.ByKind[e.Kind].Applied++
			st.Moves++
			st.RoleChanges += len(changed)
		default:
			st.Rejected++
		}
	}
	if alive := s.AliveCount(); fallbackFrac > 0 && alive > 0 &&
		float64(st.RoleChanges) > fallbackFrac*float64(alive) {
		s.RebuildRoles()
		st.Fallback = true
	}
	return st
}

// Move relocates node v to position to. A dead node's move is a pure
// geometry update (its slot keeps the new position for a later join). An
// alive node leaves at its old position (coverage repaired exactly as for
// a failure), relocates, and rejoins at the new one, so every clustering
// invariant holds by construction. It returns the nodes whose role
// changed, v included when its own role differs after the move.
func (s *State) Move(v int, to geom.Point) ([]int, error) {
	if v < 0 || v >= len(s.alive) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if !s.alive[v] {
		s.relocate(v, to)
		return nil, nil
	}
	changed, err := s.Fail(v)
	if err != nil {
		return nil, err
	}
	s.relocate(v, to)
	more, err := s.Recover(v)
	if err != nil {
		return changed, err
	}
	return mergeSorted(changed, more), nil
}

// relocate updates v's position and its unit-disk edges in the full graph,
// using the same closed-ball predicate (dist² ≤ r²) as udg.Build.
func (s *State) relocate(v int, to geom.Point) {
	s.pts[v] = to
	r2 := s.radius * s.radius
	for u := range s.pts {
		if u == v {
			continue
		}
		if s.pts[u].Dist2(to) <= r2 {
			s.full.AddEdge(v, u)
		} else {
			s.full.RemoveEdge(v, u)
		}
	}
	s.noteReloc(v)
}

// mergeSorted merges two sorted ID lists, deduplicating.
func mergeSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := append(a, b...)
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// RebuildRoles re-clusters the alive subgraph from scratch with the
// lowest-ID MIS and installs the fresh roles, dropping every cached
// structure. It returns the number of nodes whose role changed (also added
// to RoleChanges). This is the fallback of ApplyBatch and the recovery
// path after local repair has densified the dominator set.
func (s *State) RebuildRoles() int {
	cl := cluster.Centralized(s.AliveGraph())
	changed := 0
	for v, a := range s.alive {
		if !a {
			continue
		}
		if s.status[v] != cl.Status[v] {
			changed++
		}
		s.status[v] = cl.Status[v]
	}
	s.RoleChanges += changed
	s.invalidate()
	return changed
}

// FromRoles reconstructs a State from an externally recorded role
// assignment: the from-scratch rebuild the property tests compare the
// incrementally maintained backbone against, and the restore path of a
// service restarting from a persisted snapshot. The positions slice is
// retained; alive and status are copied. It fails when the roles violate
// the clustering invariants on the unit disk graph over pts.
func FromRoles(pts []geom.Point, radius float64, alive []bool, status []cluster.Status) (*State, error) {
	if len(alive) != len(pts) || len(status) != len(pts) {
		return nil, fmt.Errorf("maintain: FromRoles: %d points, %d alive, %d status", len(pts), len(alive), len(status))
	}
	s := &State{
		pts:    pts,
		radius: radius,
		full:   udg.Build(pts, radius),
		alive:  append([]bool(nil), alive...),
		status: append([]cluster.Status(nil), status...),
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("maintain: FromRoles: %w", err)
	}
	return s, nil
}

// N returns the number of node slots, alive or dead.
func (s *State) N() int { return len(s.pts) }

// AliveCount returns the number of alive nodes.
func (s *State) AliveCount() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Radius returns the transmission radius.
func (s *State) Radius() float64 { return s.radius }

// Positions returns a copy of the current node positions (moves mutate the
// State's own slice, so snapshots must copy).
func (s *State) Positions() []geom.Point {
	out := make([]geom.Point, len(s.pts))
	copy(out, s.pts)
	return out
}

// Roles returns copies of the alive flags and clustering roles — the
// snapshot FromRoles restores from.
func (s *State) Roles() ([]bool, []cluster.Status) {
	return append([]bool(nil), s.alive...), append([]cluster.Status(nil), s.status...)
}

// VerifyBackbone checks the degraded-mode invariants (the VerifyPartial
// contract of core) on maintained structures: clustering invariants hold,
// every backbone edge connects alive nodes over a live UDG edge
// (subgraph), the planarization has no crossing edges (planar), and within
// every connected component of the alive UDG both the CDS and the
// planarization connect the component's backbone members (connected per
// component). A nil error means every check passed.
func (s *State) VerifyBackbone(conn *connector.Result, pldel *graph.Graph) error {
	if err := s.CheckInvariants(); err != nil {
		return err
	}
	alive := s.AliveGraph()
	for name, g := range map[string]*graph.Graph{"CDS": conn.CDS, "ICDS": conn.ICDS, "LDel(ICDS)": pldel} {
		for _, e := range g.Edges() {
			if !s.alive[e.U] || !s.alive[e.V] {
				return fmt.Errorf("maintain: %s edge %v touches a dead node", name, e)
			}
			if !alive.HasEdge(e.U, e.V) {
				return fmt.Errorf("maintain: %s edge %v is not a live UDG edge", name, e)
			}
		}
	}
	if !pldel.IsPlanarEmbedding() {
		return fmt.Errorf("maintain: planarized backbone has crossing edges")
	}
	for _, comp := range alive.Components() {
		if len(comp) == 1 && !s.alive[comp[0]] {
			continue // dead nodes are isolated singletons of the alive graph
		}
		var backbone []int
		for _, v := range comp {
			if conn.InBackbone[v] {
				backbone = append(backbone, v)
			}
		}
		if !conn.CDS.SubsetConnected(backbone) {
			return fmt.Errorf("maintain: CDS does not connect the backbone of the component at node %d", comp[0])
		}
		if !pldel.SubsetConnected(backbone) {
			return fmt.Errorf("maintain: planarized backbone disconnected in the component at node %d", comp[0])
		}
	}
	return nil
}
