// Package maintain implements incremental maintenance of the backbone
// under node failures and recoveries — the paper's future-work item
// ("dynamic updating of the planar backbone"). The key observation is that
// the clustering *roles* (dominator / dominatee) can be repaired locally:
//
//   - when a dominator fails, only its dominatees can become uncovered,
//     and promoting the uncovered ones in ID order restores a maximal
//     independent set touching at most deg(v) nodes;
//   - when a dominatee or connector fails, no role changes at all;
//   - when a node recovers, it joins as a dominatee if any neighbor
//     dominates it and as a dominator otherwise.
//
// The derived structures (connectors, induced graphs, LDel planarization)
// are then recomputed from the repaired roles — in a deployment that is a
// constant-message local protocol per the paper's bounds; here the package
// tracks role churn as the locality measure, and tests assert that every
// invariant (independence, domination, CDS connectivity, planarity,
// spanning) survives arbitrary failure/recovery sequences.
package maintain

import (
	"errors"
	"fmt"
	"sort"

	"geospanner/internal/cluster"
	"geospanner/internal/connector"
	"geospanner/internal/geom"
	"geospanner/internal/graph"
	"geospanner/internal/ldel"
	"geospanner/internal/udg"
)

// Maintenance errors.
var (
	// ErrDeadNode is returned when failing an already-failed node or
	// recovering an alive one.
	ErrDeadNode = errors.New("maintain: node state conflict")
	// ErrUnknownNode is returned for out-of-range node IDs.
	ErrUnknownNode = errors.New("maintain: unknown node")
)

// State tracks a network with a maintained clustering under node
// failures and recoveries. Node IDs are stable; failed nodes keep their
// slot and may recover later.
type State struct {
	pts    []geom.Point
	radius float64
	full   *graph.Graph // UDG over all nodes
	alive  []bool
	status []cluster.Status

	// RoleChanges counts nodes whose role changed across all events — the
	// locality measure of incremental maintenance.
	RoleChanges int
}

// New builds the initial state from a point set: the unit disk graph plus
// the lowest-ID MIS clustering, with every node alive.
func New(pts []geom.Point, radius float64) *State {
	full := udg.Build(pts, radius)
	cl := cluster.Centralized(full)
	s := &State{
		pts:    pts,
		radius: radius,
		full:   full,
		alive:  make([]bool, len(pts)),
		status: make([]cluster.Status, len(pts)),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	copy(s.status, cl.Status)
	return s
}

// Alive reports whether node v is alive.
func (s *State) Alive(v int) bool { return v >= 0 && v < len(s.alive) && s.alive[v] }

// Status returns node v's current clustering role.
func (s *State) Status(v int) cluster.Status { return s.status[v] }

// AliveGraph returns the unit disk graph restricted to alive nodes (failed
// nodes are isolated).
func (s *State) AliveGraph() *graph.Graph {
	keep := make(map[int]bool, len(s.alive))
	for v, a := range s.alive {
		if a {
			keep[v] = true
		}
	}
	return s.full.Subgraph(keep)
}

// aliveNeighbors returns v's alive UDG neighbors.
func (s *State) aliveNeighbors(v int) []int {
	var out []int
	for _, u := range s.full.Neighbors(v) {
		if s.alive[u] {
			out = append(out, u)
		}
	}
	return out
}

func (s *State) hasAliveDominatorNeighbor(v int) bool {
	for _, u := range s.aliveNeighbors(v) {
		if s.status[u] == cluster.Dominator {
			return true
		}
	}
	return false
}

// Fail marks node v failed and repairs the clustering locally. It returns
// the IDs of nodes whose role changed (excluding v itself).
func (s *State) Fail(v int) ([]int, error) {
	if v < 0 || v >= len(s.alive) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if !s.alive[v] {
		return nil, fmt.Errorf("%w: node %d already failed", ErrDeadNode, v)
	}
	wasDominator := s.status[v] == cluster.Dominator
	s.alive[v] = false

	if !wasDominator {
		// Dominatees and connectors carry no coverage responsibility.
		return nil, nil
	}

	// Only v's alive dominatee neighbors can become uncovered. Promote the
	// uncovered ones in ID order; each promotion may cover later ones.
	var uncovered []int
	for _, w := range s.aliveNeighbors(v) {
		if s.status[w] == cluster.Dominatee && !s.hasAliveDominatorNeighbor(w) {
			uncovered = append(uncovered, w)
		}
	}
	sort.Ints(uncovered)
	var changed []int
	for _, w := range uncovered {
		if s.hasAliveDominatorNeighbor(w) {
			continue // covered by an earlier promotion
		}
		s.status[w] = cluster.Dominator
		changed = append(changed, w)
	}
	s.RoleChanges += len(changed)
	return changed, nil
}

// Recover brings node v back. It rejoins as a dominatee when an alive
// neighbor dominates it, otherwise as a dominator. It returns the IDs of
// nodes whose role changed (v itself included when its role differs from
// its pre-failure one; demotions of other dominators never happen, keeping
// the repair strictly local at the cost of a possibly denser-than-minimal
// dominator set).
func (s *State) Recover(v int) ([]int, error) {
	if v < 0 || v >= len(s.alive) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if s.alive[v] {
		return nil, fmt.Errorf("%w: node %d already alive", ErrDeadNode, v)
	}
	s.alive[v] = true
	old := s.status[v]
	if s.hasAliveDominatorNeighbor(v) {
		s.status[v] = cluster.Dominatee
	} else {
		s.status[v] = cluster.Dominator
	}
	if s.status[v] != old {
		s.RoleChanges++
		return []int{v}, nil
	}
	return nil, nil
}

// Clustering derives the full cluster.Result (dominator lists, two-hop
// dominator lists) from the maintained roles over the alive subgraph.
func (s *State) Clustering() *cluster.Result {
	g := s.AliveGraph()
	n := g.N()
	res := &cluster.Result{
		Status:           make([]cluster.Status, n),
		DominatorsOf:     make([][]int, n),
		TwoHopDominators: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			res.Status[v] = cluster.Dominatee // failed: no role, no links
			continue
		}
		res.Status[v] = s.status[v]
		if s.status[v] == cluster.Dominator {
			res.Dominators = append(res.Dominators, v)
		}
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] || s.status[v] == cluster.Dominator {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if res.Status[u] == cluster.Dominator && s.alive[u] {
				res.DominatorsOf[v] = append(res.DominatorsOf[v], u)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		two := make(map[int]bool)
		for _, w := range g.Neighbors(v) {
			for _, u := range res.DominatorsOf[w] {
				if u != v && !g.HasEdge(u, v) {
					two[u] = true
				}
			}
		}
		var list []int
		for u := range two {
			list = append(list, u)
		}
		sort.Ints(list)
		res.TwoHopDominators[v] = list
	}
	return res
}

// Structures recomputes the derived backbone structures (connectors, CDS
// family, planar LDel) from the maintained roles.
func (s *State) Structures() (*connector.Result, *graph.Graph, error) {
	g := s.AliveGraph()
	cl := s.Clustering()
	conn := connector.Centralized(g, cl)
	ld, err := ldel.Centralized(conn.ICDS, conn.InBackbone, s.radius)
	if err != nil {
		return nil, nil, fmt.Errorf("maintain: planarize: %w", err)
	}
	return conn, ld.PLDel, nil
}

// CheckInvariants verifies the maintained clustering: dominators form an
// independent set of the alive UDG and every alive non-dominator has an
// alive dominator neighbor. It returns nil when both hold.
func (s *State) CheckInvariants() error {
	for v, a := range s.alive {
		if !a {
			continue
		}
		switch s.status[v] {
		case cluster.Dominator:
			for _, u := range s.aliveNeighbors(v) {
				if s.status[u] == cluster.Dominator {
					return fmt.Errorf("maintain: adjacent dominators %d, %d", v, u)
				}
			}
		default:
			if !s.hasAliveDominatorNeighbor(v) {
				return fmt.Errorf("maintain: node %d uncovered", v)
			}
		}
	}
	return nil
}
