// Package maintain implements incremental maintenance of the backbone
// under node failures and recoveries — the paper's future-work item
// ("dynamic updating of the planar backbone"). The key observation is that
// the clustering *roles* (dominator / dominatee) can be repaired locally:
//
//   - when a dominator fails, only its dominatees can become uncovered,
//     and promoting the uncovered ones in ID order restores a maximal
//     independent set touching at most deg(v) nodes;
//   - when a dominatee or connector fails, no role changes at all;
//   - when a node recovers, it joins as a dominatee if any neighbor
//     dominates it and as a dominator otherwise.
//
// The derived structures (connectors, induced graphs, LDel planarization)
// are then recomputed from the repaired roles — in a deployment that is a
// constant-message local protocol per the paper's bounds; here the package
// tracks role churn as the locality measure, and tests assert that every
// invariant (independence, domination, CDS connectivity, planarity,
// spanning) survives arbitrary failure/recovery sequences.
package maintain

import (
	"errors"
	"fmt"
	"sort"

	"geospanner/internal/cluster"
	"geospanner/internal/connector"
	"geospanner/internal/geom"
	"geospanner/internal/graph"
	"geospanner/internal/ldel"
	"geospanner/internal/udg"
)

// Maintenance errors.
var (
	// ErrDeadNode is returned when failing an already-failed node or
	// recovering an alive one.
	ErrDeadNode = errors.New("maintain: node state conflict")
	// ErrUnknownNode is returned for out-of-range node IDs.
	ErrUnknownNode = errors.New("maintain: unknown node")
)

// State tracks a network with a maintained clustering under node
// failures and recoveries. Node IDs are stable; failed nodes keep their
// slot and may recover later.
type State struct {
	pts    []geom.Point
	radius float64
	full   *graph.Graph // UDG over all nodes
	alive  []bool
	status []cluster.Status

	// RoleChanges counts nodes whose role changed across all events — the
	// locality measure of incremental maintenance.
	RoleChanges int

	// Recomputes counts full backbone recomputations performed by
	// Structures. Events that change no roles and touch no backbone node
	// patch the cached structures in place instead of invalidating them,
	// so a churn sequence dominated by leaf dominatees keeps this counter
	// flat — the "skip the recompute" contract.
	Recomputes int

	// Cached derived structures; nil when stale. Clustering and
	// Structures return the cached objects, so callers must treat the
	// results as read-only.
	cachedCl   *cluster.Result
	cachedConn *connector.Result
	cachedLDel *graph.Graph
}

// invalidate drops every cached derived structure.
func (s *State) invalidate() {
	s.cachedCl = nil
	s.cachedConn = nil
	s.cachedLDel = nil
}

// New builds the initial state from a point set: the unit disk graph plus
// the lowest-ID MIS clustering, with every node alive.
func New(pts []geom.Point, radius float64) *State {
	full := udg.Build(pts, radius)
	cl := cluster.Centralized(full)
	s := &State{
		pts:    pts,
		radius: radius,
		full:   full,
		alive:  make([]bool, len(pts)),
		status: make([]cluster.Status, len(pts)),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	copy(s.status, cl.Status)
	return s
}

// Alive reports whether node v is alive.
func (s *State) Alive(v int) bool { return v >= 0 && v < len(s.alive) && s.alive[v] }

// Status returns node v's current clustering role.
func (s *State) Status(v int) cluster.Status { return s.status[v] }

// AliveGraph returns the unit disk graph restricted to alive nodes (failed
// nodes are isolated).
func (s *State) AliveGraph() *graph.Graph {
	keep := make(map[int]bool, len(s.alive))
	for v, a := range s.alive {
		if a {
			keep[v] = true
		}
	}
	return s.full.Subgraph(keep)
}

// aliveNeighbors returns v's alive UDG neighbors.
func (s *State) aliveNeighbors(v int) []int {
	var out []int
	for _, u := range s.full.Neighbors(v) {
		if s.alive[u] {
			out = append(out, u)
		}
	}
	return out
}

func (s *State) hasAliveDominatorNeighbor(v int) bool {
	for _, u := range s.aliveNeighbors(v) {
		if s.status[u] == cluster.Dominator {
			return true
		}
	}
	return false
}

// Fail marks node v failed and repairs the clustering locally. It returns
// the IDs of nodes whose role changed (excluding v itself).
func (s *State) Fail(v int) ([]int, error) {
	if v < 0 || v >= len(s.alive) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if !s.alive[v] {
		return nil, fmt.Errorf("%w: node %d already failed", ErrDeadNode, v)
	}
	wasDominator := s.status[v] == cluster.Dominator
	s.alive[v] = false

	if !wasDominator {
		// Dominatees and connectors carry no coverage responsibility, so
		// no roles change. A connector failure still reroutes the backbone
		// (drop the caches); a plain dominatee failure only removes its
		// own coverage edges, which the caches absorb in place.
		if s.cachedConn != nil && s.cachedConn.InBackbone[v] {
			s.invalidate()
		} else {
			s.patchFail(v)
		}
		return nil, nil
	}
	s.invalidate()

	// Only v's alive dominatee neighbors can become uncovered. Promote the
	// uncovered ones in ID order; each promotion may cover later ones.
	var uncovered []int
	for _, w := range s.aliveNeighbors(v) {
		if s.status[w] == cluster.Dominatee && !s.hasAliveDominatorNeighbor(w) {
			uncovered = append(uncovered, w)
		}
	}
	sort.Ints(uncovered)
	var changed []int
	for _, w := range uncovered {
		if s.hasAliveDominatorNeighbor(w) {
			continue // covered by an earlier promotion
		}
		s.status[w] = cluster.Dominator
		changed = append(changed, w)
	}
	s.RoleChanges += len(changed)
	return changed, nil
}

// Recover brings node v back. It rejoins as a dominatee when an alive
// neighbor dominates it, otherwise as a dominator. It returns the IDs of
// nodes whose role changed (v itself included when its role differs from
// its pre-failure one; demotions of other dominators never happen, keeping
// the repair strictly local at the cost of a possibly denser-than-minimal
// dominator set).
func (s *State) Recover(v int) ([]int, error) {
	if v < 0 || v >= len(s.alive) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if s.alive[v] {
		return nil, fmt.Errorf("%w: node %d already alive", ErrDeadNode, v)
	}
	s.alive[v] = true
	old := s.status[v]
	if s.hasAliveDominatorNeighbor(v) {
		s.status[v] = cluster.Dominatee
	} else {
		s.status[v] = cluster.Dominator
	}
	if s.status[v] != old {
		s.invalidate()
		s.RoleChanges++
		return []int{v}, nil
	}
	if s.status[v] == cluster.Dominator {
		// A dominator rejoining changes no role but reshapes the backbone
		// (it must be reconnected by fresh connectors).
		s.invalidate()
	} else {
		// The clustering cache is patched exactly (the local formulas equal
		// the full derivation), but the derived structures must be dropped:
		// a rejoining node adds candidate connector paths, so the canonical
		// election over the new graph may differ from the cached one even
		// though no role changed. Removing a non-elected candidate (Fail)
		// cannot change the election argmin; adding one can.
		s.patchRecover(v)
		s.cachedConn = nil
		s.cachedLDel = nil
	}
	return nil, nil
}

// patchFail updates the cached derived structures for the failure of a
// role-neutral non-backbone node v: v loses its coverage links and drops
// out of the two-hop views of its neighbors; the backbone is untouched.
func (s *State) patchFail(v int) {
	if s.cachedCl != nil {
		cl := s.cachedCl
		cl.Status[v] = cluster.Dominatee // failed-node convention of Clustering
		cl.DominatorsOf[v] = nil
		cl.TwoHopDominators[v] = nil
		for _, x := range s.aliveNeighbors(v) {
			cl.TwoHopDominators[x] = s.twoHopOf(cl, x)
		}
	}
	if s.cachedConn != nil {
		// v contributed only dominatee→dominator edges to the primed
		// graphs; CDS, ICDS and the planarization never contained it.
		removeIncident(s.cachedConn.CDSPrime, v)
		removeIncident(s.cachedConn.ICDSPrime, v)
	}
}

// patchRecover updates the cached clustering for a node rejoining as a
// covered dominatee with its old role: it regains its dominator links and
// reappears in its neighbors' two-hop views. Only the clustering cache is
// patched — Recover drops the derived structures, whose canonical form may
// change when a candidate connector node appears.
func (s *State) patchRecover(v int) {
	if s.cachedCl != nil {
		cl := s.cachedCl
		cl.Status[v] = cluster.Dominatee
		var doms []int
		for _, u := range s.aliveNeighbors(v) {
			if s.status[u] == cluster.Dominator {
				doms = append(doms, u)
			}
		}
		sort.Ints(doms)
		cl.DominatorsOf[v] = doms
		cl.TwoHopDominators[v] = s.twoHopOf(cl, v)
		for _, x := range s.aliveNeighbors(v) {
			cl.TwoHopDominators[x] = s.twoHopOf(cl, x)
		}
	} else {
		// No clustering cache to read dominators from; anything derived is
		// stale beyond repair.
		s.invalidate()
	}
}

// twoHopOf derives node x's two-hop dominator list from the maintained
// roles — the same formula Clustering uses, localized to one node.
func (s *State) twoHopOf(cl *cluster.Result, x int) []int {
	two := make(map[int]bool)
	for _, w := range s.aliveNeighbors(x) {
		for _, u := range cl.DominatorsOf[w] {
			if u != x && !s.full.HasEdge(u, x) {
				two[u] = true
			}
		}
	}
	if len(two) == 0 {
		return nil
	}
	list := make([]int, 0, len(two))
	for u := range two {
		list = append(list, u)
	}
	sort.Ints(list)
	return list
}

// removeIncident removes every edge incident to v from g.
func removeIncident(g *graph.Graph, v int) {
	nbrs := append([]int(nil), g.Neighbors(v)...)
	for _, u := range nbrs {
		g.RemoveEdge(v, u)
	}
}

// Clustering derives the full cluster.Result (dominator lists, two-hop
// dominator lists) from the maintained roles over the alive subgraph. The
// result is cached — and patched in place by role-neutral events — so
// callers must treat it as read-only.
func (s *State) Clustering() *cluster.Result {
	if s.cachedCl != nil {
		return s.cachedCl
	}
	g := s.AliveGraph()
	n := g.N()
	res := &cluster.Result{
		Status:           make([]cluster.Status, n),
		DominatorsOf:     make([][]int, n),
		TwoHopDominators: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			res.Status[v] = cluster.Dominatee // failed: no role, no links
			continue
		}
		res.Status[v] = s.status[v]
		if s.status[v] == cluster.Dominator {
			res.Dominators = append(res.Dominators, v)
		}
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] || s.status[v] == cluster.Dominator {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if res.Status[u] == cluster.Dominator && s.alive[u] {
				res.DominatorsOf[v] = append(res.DominatorsOf[v], u)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		two := make(map[int]bool)
		for _, w := range g.Neighbors(v) {
			for _, u := range res.DominatorsOf[w] {
				if u != v && !g.HasEdge(u, v) {
					two[u] = true
				}
			}
		}
		var list []int
		for u := range two {
			list = append(list, u)
		}
		sort.Ints(list)
		res.TwoHopDominators[v] = list
	}
	s.cachedCl = res
	return res
}

// Structures returns the derived backbone structures (connectors, CDS
// family, planar LDel) for the maintained roles. When every event since
// the last call was role-neutral and away from the backbone, the cached
// structures — patched in place by those events — are returned without
// recomputation (Recomputes does not advance); otherwise the backbone is
// rebuilt from the repaired roles. Results are cached: treat them as
// read-only.
func (s *State) Structures() (*connector.Result, *graph.Graph, error) {
	cl := s.Clustering()
	if s.cachedConn != nil && s.cachedLDel != nil {
		return s.cachedConn, s.cachedLDel, nil
	}
	g := s.AliveGraph()
	conn := connector.Centralized(g, cl)
	ld, err := ldel.Centralized(conn.ICDS, conn.InBackbone, s.radius)
	if err != nil {
		return nil, nil, fmt.Errorf("maintain: planarize: %w", err)
	}
	s.Recomputes++
	s.cachedConn = conn
	s.cachedLDel = ld.PLDel
	return conn, ld.PLDel, nil
}

// CheckInvariants verifies the maintained clustering: dominators form an
// independent set of the alive UDG and every alive non-dominator has an
// alive dominator neighbor. It returns nil when both hold.
func (s *State) CheckInvariants() error {
	for v, a := range s.alive {
		if !a {
			continue
		}
		switch s.status[v] {
		case cluster.Dominator:
			for _, u := range s.aliveNeighbors(v) {
				if s.status[u] == cluster.Dominator {
					return fmt.Errorf("maintain: adjacent dominators %d, %d", v, u)
				}
			}
		default:
			if !s.hasAliveDominatorNeighbor(v) {
				return fmt.Errorf("maintain: node %d uncovered", v)
			}
		}
	}
	return nil
}
