// Package maintain implements incremental maintenance of the backbone
// under node failures and recoveries — the paper's future-work item
// ("dynamic updating of the planar backbone"). The key observation is that
// the clustering *roles* (dominator / dominatee) can be repaired locally:
//
//   - when a dominator fails, only its dominatees can become uncovered,
//     and promoting the uncovered ones in ID order restores a maximal
//     independent set touching at most deg(v) nodes;
//   - when a dominatee or connector fails, no role changes at all;
//   - when a node recovers, it joins as a dominatee if any neighbor
//     dominates it and as a dominator otherwise.
//
// The derived structures (connectors, induced graphs, LDel planarization)
// are then recomputed from the repaired roles — in a deployment that is a
// constant-message local protocol per the paper's bounds; here the package
// tracks role churn as the locality measure, and tests assert that every
// invariant (independence, domination, CDS connectivity, planarity,
// spanning) survives arbitrary failure/recovery sequences.
package maintain

import (
	"errors"
	"fmt"
	"sort"

	"geospanner/internal/cluster"
	"geospanner/internal/connector"
	"geospanner/internal/geom"
	"geospanner/internal/graph"
	"geospanner/internal/ldel"
	"geospanner/internal/udg"
)

// Maintenance errors.
var (
	// ErrDeadNode is returned when failing an already-failed node or
	// recovering an alive one.
	ErrDeadNode = errors.New("maintain: node state conflict")
	// ErrUnknownNode is returned for out-of-range node IDs.
	ErrUnknownNode = errors.New("maintain: unknown node")
)

// State tracks a network with a maintained clustering under node
// failures and recoveries. Node IDs are stable; failed nodes keep their
// slot and may recover later.
type State struct {
	pts    []geom.Point
	radius float64
	full   *graph.Graph // UDG over all nodes
	alive  []bool
	status []cluster.Status

	// RoleChanges counts nodes whose role changed across all events — the
	// locality measure of incremental maintenance.
	RoleChanges int

	// Recomputes counts full backbone recomputations performed by
	// Structures. With witness patching enabled (the default), structural
	// events accumulate a dirty scope and Structures splices a patch into
	// the cached structures instead — counted in Patches, not here — so
	// recompute_ratio (Recomputes per epoch) stays well below 1.0 under
	// churn.
	Recomputes int

	// Patches counts Structures calls that serviced the accumulated
	// events by witness-scoped patching (bit-identical to a rebuild).
	Patches int

	// PatchFallbacks counts patches abandoned because the dirty scope
	// exceeded PatchScopeFraction of the alive nodes; each such call also
	// counts in Recomputes.
	PatchFallbacks int

	// PatchScopeFraction bounds the witness patch scope as a fraction of
	// alive nodes: 0 selects DefaultPatchScopeFraction, negative disables
	// witness patching entirely (events drop the caches — the measurement
	// baseline).
	PatchScopeFraction float64

	// Cached derived structures; nil when stale. Clustering and
	// Structures return the cached objects, so callers must treat the
	// results as read-only.
	cachedCl   *cluster.Result
	cachedConn *connector.Result
	cachedLDel *graph.Graph

	// Election witnesses backing the cached structures (nil whenever the
	// caches are), plus the dirty scope accumulated since the last
	// Structures call.
	wit          *connector.Witness
	ldwit        *ldel.Witness
	pending      map[int]bool
	pendingReloc map[int]bool
}

// invalidate drops every cached derived structure and its witnesses.
func (s *State) invalidate() {
	s.cachedCl = nil
	s.cachedConn = nil
	s.cachedLDel = nil
	s.wit = nil
	s.ldwit = nil
	s.pending = nil
	s.pendingReloc = nil
}

// New builds the initial state from a point set: the unit disk graph plus
// the lowest-ID MIS clustering, with every node alive.
func New(pts []geom.Point, radius float64) *State {
	full := udg.Build(pts, radius)
	cl := cluster.Centralized(full)
	s := &State{
		pts:    pts,
		radius: radius,
		full:   full,
		alive:  make([]bool, len(pts)),
		status: make([]cluster.Status, len(pts)),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	copy(s.status, cl.Status)
	return s
}

// Alive reports whether node v is alive.
func (s *State) Alive(v int) bool { return v >= 0 && v < len(s.alive) && s.alive[v] }

// Status returns node v's current clustering role.
func (s *State) Status(v int) cluster.Status { return s.status[v] }

// AliveGraph returns the unit disk graph restricted to alive nodes (failed
// nodes are isolated).
func (s *State) AliveGraph() *graph.Graph {
	keep := make(map[int]bool, len(s.alive))
	for v, a := range s.alive {
		if a {
			keep[v] = true
		}
	}
	return s.full.Subgraph(keep)
}

// aliveNeighbors returns v's alive UDG neighbors.
func (s *State) aliveNeighbors(v int) []int {
	var out []int
	for _, u := range s.full.Neighbors(v) {
		if s.alive[u] {
			out = append(out, u)
		}
	}
	return out
}

func (s *State) hasAliveDominatorNeighbor(v int) bool {
	for _, u := range s.aliveNeighbors(v) {
		if s.status[u] == cluster.Dominator {
			return true
		}
	}
	return false
}

// Fail marks node v failed and repairs the clustering locally. It returns
// the IDs of nodes whose role changed (excluding v itself).
func (s *State) Fail(v int) ([]int, error) {
	if v < 0 || v >= len(s.alive) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if !s.alive[v] {
		return nil, fmt.Errorf("%w: node %d already failed", ErrDeadNode, v)
	}
	wasDominator := s.status[v] == cluster.Dominator
	s.alive[v] = false

	if !wasDominator {
		// Dominatees and connectors carry no coverage responsibility, so
		// no roles change. The clustering cache absorbs the failure in
		// place; the derived structures are repaired at the next
		// Structures call by re-running the elections v witnessed — a dead
		// losing candidate can unblock a larger-ID winner, so even a
		// non-backbone failure can move a distant-looking election
		// (DESIGN.md §14).
		s.patchFail(v)
		s.noteScope(v)
		return nil, nil
	}
	// A dominator failure changes coverage: rebuild the clustering cache
	// fresh (cheap — roles are maintained in s.status) and scope the
	// derived-structure patch to the failure and its promotions.
	s.cachedCl = nil

	// Only v's alive dominatee neighbors can become uncovered. Promote the
	// uncovered ones in ID order; each promotion may cover later ones.
	var uncovered []int
	for _, w := range s.aliveNeighbors(v) {
		if s.status[w] == cluster.Dominatee && !s.hasAliveDominatorNeighbor(w) {
			uncovered = append(uncovered, w)
		}
	}
	sort.Ints(uncovered)
	var changed []int
	for _, w := range uncovered {
		if s.hasAliveDominatorNeighbor(w) {
			continue // covered by an earlier promotion
		}
		s.status[w] = cluster.Dominator
		changed = append(changed, w)
	}
	s.RoleChanges += len(changed)
	s.noteScope(v)
	for _, w := range changed {
		s.noteScope(w)
	}
	return changed, nil
}

// Recover brings node v back. It rejoins as a dominatee when an alive
// neighbor dominates it, otherwise as a dominator. It returns the IDs of
// nodes whose role changed (v itself included when its role differs from
// its pre-failure one; demotions of other dominators never happen, keeping
// the repair strictly local at the cost of a possibly denser-than-minimal
// dominator set).
func (s *State) Recover(v int) ([]int, error) {
	if v < 0 || v >= len(s.alive) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if s.alive[v] {
		return nil, fmt.Errorf("%w: node %d already alive", ErrDeadNode, v)
	}
	s.alive[v] = true
	old := s.status[v]
	if s.hasAliveDominatorNeighbor(v) {
		s.status[v] = cluster.Dominatee
	} else {
		s.status[v] = cluster.Dominator
	}
	if s.status[v] != old {
		// v's own role changed: rebuild the clustering cache fresh and
		// scope the derived-structure patch to v's two-hop ball — every
		// election v's new role can reach is re-run there.
		s.cachedCl = nil
		s.noteScope(v)
		s.RoleChanges++
		return []int{v}, nil
	}
	if s.status[v] == cluster.Dominator {
		// A dominator rejoining changes no role but reshapes the backbone
		// (it must be reconnected by fresh connectors) — same scoped patch.
		s.cachedCl = nil
		s.noteScope(v)
	} else {
		// A covered dominatee rejoining: the clustering cache is patched
		// exactly (the local formulas equal the full derivation), and the
		// derived structures are patched at the next Structures call by
		// re-running every election within v's witness scope — the
		// rejoining candidate can only change elections it can reach.
		s.patchRecover(v)
		s.noteScope(v)
	}
	return nil, nil
}

// patchFail updates the cached clustering for the failure of a
// role-neutral node v: v loses its coverage links and drops out of the
// two-hop views of its neighbors. The derived structures are repaired by
// the witness patch at the next Structures call.
func (s *State) patchFail(v int) {
	if s.cachedCl == nil {
		return
	}
	cl := s.cachedCl
	cl.Status[v] = cluster.Dominatee // failed-node convention of Clustering
	cl.DominatorsOf[v] = nil
	cl.TwoHopDominators[v] = nil
	for _, x := range s.aliveNeighbors(v) {
		cl.TwoHopDominators[x] = s.twoHopOf(cl, x)
	}
}

// patchRecover updates the cached clustering for a node rejoining as a
// covered dominatee with its old role: it regains its dominator links and
// reappears in its neighbors' two-hop views. With no clustering cache to
// patch there is nothing to do — Clustering re-derives the canonical
// result from the maintained roles, and the derived structures are
// repaired against it by the witness patch at the next Structures call.
func (s *State) patchRecover(v int) {
	if s.cachedCl == nil {
		return
	}
	cl := s.cachedCl
	cl.Status[v] = cluster.Dominatee
	var doms []int
	for _, u := range s.aliveNeighbors(v) {
		if s.status[u] == cluster.Dominator {
			doms = append(doms, u)
		}
	}
	sort.Ints(doms)
	cl.DominatorsOf[v] = doms
	cl.TwoHopDominators[v] = s.twoHopOf(cl, v)
	for _, x := range s.aliveNeighbors(v) {
		cl.TwoHopDominators[x] = s.twoHopOf(cl, x)
	}
}

// twoHopOf derives node x's two-hop dominator list from the maintained
// roles — the same formula Clustering uses, localized to one node.
func (s *State) twoHopOf(cl *cluster.Result, x int) []int {
	two := make(map[int]bool)
	for _, w := range s.aliveNeighbors(x) {
		for _, u := range cl.DominatorsOf[w] {
			if u != x && !s.full.HasEdge(u, x) {
				two[u] = true
			}
		}
	}
	if len(two) == 0 {
		return nil
	}
	list := make([]int, 0, len(two))
	for u := range two {
		list = append(list, u)
	}
	sort.Ints(list)
	return list
}

// Clustering derives the full cluster.Result (dominator lists, two-hop
// dominator lists) from the maintained roles over the alive subgraph. The
// result is cached — and patched in place by role-neutral events — so
// callers must treat it as read-only.
func (s *State) Clustering() *cluster.Result {
	if s.cachedCl != nil {
		return s.cachedCl
	}
	g := s.AliveGraph()
	n := g.N()
	res := &cluster.Result{
		Status:           make([]cluster.Status, n),
		DominatorsOf:     make([][]int, n),
		TwoHopDominators: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			res.Status[v] = cluster.Dominatee // failed: no role, no links
			continue
		}
		res.Status[v] = s.status[v]
		if s.status[v] == cluster.Dominator {
			res.Dominators = append(res.Dominators, v)
		}
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] || s.status[v] == cluster.Dominator {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if res.Status[u] == cluster.Dominator && s.alive[u] {
				res.DominatorsOf[v] = append(res.DominatorsOf[v], u)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		two := make(map[int]bool)
		for _, w := range g.Neighbors(v) {
			for _, u := range res.DominatorsOf[w] {
				if u != v && !g.HasEdge(u, v) {
					two[u] = true
				}
			}
		}
		var list []int
		for u := range two {
			list = append(list, u)
		}
		sort.Ints(list)
		res.TwoHopDominators[v] = list
	}
	s.cachedCl = res
	return res
}

// Structures returns the derived backbone structures (connectors, CDS
// family, planar LDel) for the maintained roles. With witness patching
// enabled (the default), events since the last call accumulate a dirty
// scope and this call re-runs only the elections inside it, splicing the
// results into the cached structures — bit-identical to a from-scratch
// rebuild, counted in Patches. The full rebuild runs when there are no
// caches yet, when the scope exceeds PatchScopeFraction of the alive
// nodes (counted in PatchFallbacks), or when patching is disabled;
// it counts in Recomputes. Results are cached: treat them as read-only.
func (s *State) Structures() (*connector.Result, *graph.Graph, error) {
	cl := s.Clustering()
	if s.cachedConn != nil && s.cachedLDel != nil {
		if !s.hasPendingWork() {
			s.pendingReloc = nil // any relocations were dead-node geometry
			return s.cachedConn, s.cachedLDel, nil
		}
		if s.wit != nil && s.ldwit != nil && s.tryPatch(cl) {
			s.Patches++
			s.clearPending()
			return s.cachedConn, s.cachedLDel, nil
		}
	}
	conn, pldel, err := s.structures(cl)
	if err != nil {
		return nil, nil, err
	}
	s.clearPending()
	return conn, pldel, nil
}

// CheckInvariants verifies the maintained clustering: dominators form an
// independent set of the alive UDG and every alive non-dominator has an
// alive dominator neighbor. It returns nil when both hold.
func (s *State) CheckInvariants() error {
	for v, a := range s.alive {
		if !a {
			continue
		}
		switch s.status[v] {
		case cluster.Dominator:
			for _, u := range s.aliveNeighbors(v) {
				if s.status[u] == cluster.Dominator {
					return fmt.Errorf("maintain: adjacent dominators %d, %d", v, u)
				}
			}
		default:
			if !s.hasAliveDominatorNeighbor(v) {
				return fmt.Errorf("maintain: node %d uncovered", v)
			}
		}
	}
	return nil
}
