package maintain

import (
	"math/rand"
	"reflect"
	"testing"

	"geospanner/internal/cluster"
	"geospanner/internal/geom"
)

// randomBatch generates k random churn events against a mirror of the
// state, mixing moves, crashes, joins, leaves — and deliberate stream
// noise (events addressed to nodes in the wrong state), which ApplyBatch
// must reject as strict no-ops. It returns the events plus the exact
// applied/rejected split the mirror predicts.
func randomBatch(rng *rand.Rand, s *State, region float64, k int) (events []Event, wantApplied, wantRejected int) {
	alive, _ := s.Roles()
	pts := s.Positions()
	jitter := func(p geom.Point) geom.Point {
		step := s.Radius() / 2
		x := p.X + (rng.Float64()*2-1)*step
		y := p.Y + (rng.Float64()*2-1)*step
		return geom.Point{X: min(max(x, 0), region), Y: min(max(y, 0), region)}
	}
	aliveCount := 0
	for _, a := range alive {
		if a {
			aliveCount++
		}
	}
	for i := 0; i < k; i++ {
		v := rng.Intn(len(alive))
		switch roll := rng.Intn(10); {
		case roll < 4: // move: alive (full churn) or dead (geometry-only) — always applied
			to := jitter(pts[v])
			pts[v] = to
			events = append(events, Event{Kind: EventMove, Node: v, To: to})
			wantApplied++
		case roll < 8: // toggle the node's liveness — always applied
			if alive[v] {
				if aliveCount <= 2 {
					i-- // keep the network populated; reroll
					continue
				}
				kind := EventLeave
				if roll%2 == 0 {
					kind = EventCrash
				}
				events = append(events, Event{Kind: kind, Node: v})
				alive[v] = false
				aliveCount--
			} else {
				events = append(events, Event{Kind: EventJoin, Node: v})
				alive[v] = true
				aliveCount++
			}
			wantApplied++
		case roll < 9: // stream noise: wrong-state event — must be rejected
			if alive[v] {
				events = append(events, Event{Kind: EventJoin, Node: v})
			} else {
				events = append(events, Event{Kind: EventCrash, Node: v})
			}
			wantRejected++
		default: // stream noise: out-of-range IDs — must be rejected
			events = append(events, Event{Kind: EventCrash, Node: len(alive) + rng.Intn(10)})
			wantRejected++
		}
	}
	return events, wantApplied, wantRejected
}

// TestChurnBatchesMatchRebuild is the churn property test: after every
// random batch, the incrementally maintained backbone equals the backbone
// rebuilt from scratch over the same roles (graph.Equal on CDS, ICDS and
// the planarization), and the degraded-mode invariants — planar, connected
// per component, subgraph of the live UDG — hold at every epoch.
func TestChurnBatchesMatchRebuild(t *testing.T) {
	cases := []struct {
		seed   int64
		n      int
		epochs int
	}{
		{seed: 11, n: 50, epochs: 10},
		{seed: 12, n: 120, epochs: 8},
		{seed: 13, n: 260, epochs: 6},
		{seed: 14, n: 500, epochs: 4},
	}
	for _, tc := range cases {
		s := newState(t, tc.seed, tc.n)
		rng := rand.New(rand.NewSource(tc.seed * 1000))
		for epoch := 1; epoch <= tc.epochs; epoch++ {
			k := 5 + rng.Intn(21)
			events, wantApplied, wantRejected := randomBatch(rng, s, 200, k)
			st := s.ApplyBatch(events, DefaultFallbackFraction)
			if st.Applied != wantApplied || st.Rejected != wantRejected {
				t.Fatalf("n=%d epoch %d: applied=%d rejected=%d, want %d/%d",
					tc.n, epoch, st.Applied, st.Rejected, wantApplied, wantRejected)
			}
			if st.Applied+st.Rejected != st.Events {
				t.Fatalf("n=%d epoch %d: applied+rejected=%d, events=%d",
					tc.n, epoch, st.Applied+st.Rejected, st.Events)
			}
			conn, pldel, err := s.Structures()
			if err != nil {
				t.Fatalf("n=%d epoch %d: structures: %v", tc.n, epoch, err)
			}
			if err := s.VerifyBackbone(conn, pldel); err != nil {
				t.Fatalf("n=%d epoch %d: %v", tc.n, epoch, err)
			}

			// Rebuild from scratch over the same roles and compare.
			alive, status := s.Roles()
			rb, err := FromRoles(s.Positions(), s.Radius(), alive, status)
			if err != nil {
				t.Fatalf("n=%d epoch %d: rebuild: %v", tc.n, epoch, err)
			}
			rconn, rpldel, err := rb.Structures()
			if err != nil {
				t.Fatalf("n=%d epoch %d: rebuild structures: %v", tc.n, epoch, err)
			}
			if !conn.CDS.Equal(rconn.CDS) {
				t.Fatalf("n=%d epoch %d: incremental CDS differs from rebuild", tc.n, epoch)
			}
			if !conn.ICDS.Equal(rconn.ICDS) {
				t.Fatalf("n=%d epoch %d: incremental ICDS differs from rebuild", tc.n, epoch)
			}
			if !pldel.Equal(rpldel) {
				t.Fatalf("n=%d epoch %d: incremental planarization differs from rebuild", tc.n, epoch)
			}
			if !reflect.DeepEqual(conn.InBackbone, rconn.InBackbone) {
				t.Fatalf("n=%d epoch %d: backbone membership differs from rebuild", tc.n, epoch)
			}
		}
	}
}

// TestRejectedEventsDoNotInvalidateCaches is the recompute-counter
// regression test: events addressed to nodes in the wrong state (a crash
// racing a leave, a duplicate join, an out-of-range ID) must be strict
// no-ops — rejected, role-preserving, and cache-preserving — so the
// recompute-ratio metric never counts a recomputation for an event that
// changed nothing.
func TestRejectedEventsDoNotInvalidateCaches(t *testing.T) {
	s := newState(t, 21, 80)
	// Disable witness patching so every applied structural event costs a
	// recompute — the assertions below then count exactly which events
	// touched the caches, independent of patch-scope thresholds.
	s.PatchScopeFraction = -1
	if _, _, err := s.Structures(); err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 1 {
		t.Fatalf("Recomputes = %d after first derivation, want 1", s.Recomputes)
	}

	victim := 0 // crash a real node so there is a dead target for the noise
	st := s.ApplyBatch([]Event{{Kind: EventCrash, Node: victim}}, 0)
	if st.Applied != 1 || st.Rejected != 0 {
		t.Fatalf("crash batch: %+v", st)
	}
	conn, pldel, err := s.Structures()
	if err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 2 {
		t.Fatalf("Recomputes = %d after real crash, want 2", s.Recomputes)
	}

	noise := []Event{
		{Kind: EventCrash, Node: victim},  // already dead
		{Kind: EventLeave, Node: victim},  // already dead
		{Kind: EventJoin, Node: 1},        // already alive
		{Kind: EventCrash, Node: -1},      // out of range
		{Kind: EventLeave, Node: 1 << 20}, // out of range
	}
	st = s.ApplyBatch(noise, DefaultFallbackFraction)
	if st.Applied != 0 || st.Rejected != len(noise) || st.RoleChanges != 0 || st.Fallback {
		t.Fatalf("noise batch not fully rejected: %+v", st)
	}
	conn2, pldel2, err := s.Structures()
	if err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 2 {
		t.Fatalf("Recomputes = %d after rejected noise, want 2 (caches must stay warm)", s.Recomputes)
	}
	if conn2 != conn || pldel2 != pldel {
		t.Fatal("rejected events replaced the cached structures")
	}
}

// TestMoveAliveNodeMaintainsInvariants walks one node across the region in
// steps and checks the full invariant set after every move.
func TestMoveAliveNodeMaintainsInvariants(t *testing.T) {
	s := newState(t, 22, 60)
	rng := rand.New(rand.NewSource(220))
	v := 3
	for i := 0; i < 12; i++ {
		to := geom.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		if _, err := s.Move(v, to); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		if got := s.Positions()[v]; got != to {
			t.Fatalf("move %d: position %v, want %v", i, got, to)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
}

// TestMoveDeadNodeIsGeometryOnly pins the dead-move contract: no role
// churn, no cache invalidation, but the slot keeps the new position so a
// later join comes up there.
func TestMoveDeadNodeIsGeometryOnly(t *testing.T) {
	s := newState(t, 23, 60)
	if _, err := s.Fail(5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Structures(); err != nil {
		t.Fatal(err)
	}
	rec := s.Recomputes
	to := geom.Point{X: 17, Y: 23}
	changed, err := s.Move(5, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("dead move changed roles: %v", changed)
	}
	if _, _, err := s.Structures(); err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != rec {
		t.Fatalf("dead move invalidated caches: Recomputes %d -> %d", rec, s.Recomputes)
	}
	if _, err := s.Recover(5); err != nil {
		t.Fatal(err)
	}
	if got := s.Positions()[5]; got != to {
		t.Fatalf("rejoined at %v, want %v", got, to)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFallbackRestoresCentralizedClustering drives churn with a fallback
// fraction of effectively zero, so the batch must re-cluster from scratch
// and land exactly on the lowest-ID MIS of the surviving graph.
func TestFallbackRestoresCentralizedClustering(t *testing.T) {
	s := newState(t, 24, 80)
	rng := rand.New(rand.NewSource(240))
	events, _, _ := randomBatch(rng, s, 200, 30)
	st := s.ApplyBatch(events, 1e-9)
	if !st.Fallback {
		t.Fatalf("expected fallback with tiny fraction: %+v", st)
	}
	want := cluster.Centralized(s.AliveGraph())
	for v := 0; v < s.N(); v++ {
		if !s.Alive(v) {
			continue
		}
		if s.Status(v) != want.Status[v] {
			t.Fatalf("node %d: status %v after fallback, want centralized %v", v, s.Status(v), want.Status[v])
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFromRolesRejectsInvalidInput covers the restore path's validation.
func TestFromRolesRejectsInvalidInput(t *testing.T) {
	s := newState(t, 25, 50)
	alive, status := s.Roles()
	if _, err := FromRoles(s.Positions(), s.Radius(), alive[:10], status); err == nil {
		t.Fatal("mismatched alive length accepted")
	}
	// Two adjacent dominators violate the MIS independence invariant.
	bad := append([]cluster.Status(nil), status...)
	for v := range bad {
		bad[v] = cluster.Dominator
	}
	if _, err := FromRoles(s.Positions(), s.Radius(), alive, bad); err == nil {
		t.Fatal("all-dominator roles accepted")
	}
}

// TestEventKindString pins the wire vocabulary of the event kinds.
func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EventJoin: "join", EventLeave: "leave", EventCrash: "crash", EventMove: "move",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := EventKind(99).String(); got != "EventKind(99)" {
		t.Fatalf("unknown kind renders %q", got)
	}
}
