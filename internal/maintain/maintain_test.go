package maintain

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"geospanner/internal/cluster"
	"geospanner/internal/connector"
	"geospanner/internal/geom"
	"geospanner/internal/graph"
	"geospanner/internal/udg"
)

func newState(t *testing.T, seed int64, n int) *State {
	t.Helper()
	inst, err := udg.ConnectedInstance(seed, n, 200, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(inst.Points, inst.Radius)
}

func TestNewMatchesCentralizedClustering(t *testing.T) {
	s := newState(t, 1, 60)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Initially, the maintained clustering equals the lowest-ID MIS.
	want := cluster.Centralized(s.AliveGraph())
	for v := range want.Status {
		if s.Status(v) != want.Status[v] {
			t.Fatalf("node %d: status %v, want %v", v, s.Status(v), want.Status[v])
		}
	}
}

func TestFailDominateeNoChurn(t *testing.T) {
	s := newState(t, 2, 60)
	var victim int = -1
	for v := 0; v < 60; v++ {
		if s.Status(v) == cluster.Dominatee {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Fatal("no dominatee found")
	}
	changed, err := s.Fail(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("dominatee failure changed roles: %v", changed)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailDominatorRepairsCoverage(t *testing.T) {
	s := newState(t, 3, 80)
	// Find a dominator with at least one dominatee depending on it alone.
	g := s.AliveGraph()
	for v := 0; v < g.N(); v++ {
		if s.Status(v) != cluster.Dominator {
			continue
		}
		changed, err := s.Fail(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after failing dominator %d: %v (changed %v)", v, err, changed)
		}
		// Promotions touch only old neighbors of v.
		for _, w := range changed {
			if !g.HasEdge(v, w) {
				t.Fatalf("promotion of non-neighbor %d after failing %d", w, v)
			}
			if s.Status(w) != cluster.Dominator {
				t.Fatalf("changed node %d is not a dominator", w)
			}
		}
		return
	}
	t.Fatal("no dominator found")
}

func TestFailRecoverErrors(t *testing.T) {
	s := newState(t, 4, 30)
	if _, err := s.Fail(-1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Recover(5); !errors.Is(err, ErrDeadNode) {
		t.Fatalf("recover alive: err = %v", err)
	}
	if _, err := s.Fail(5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fail(5); !errors.Is(err, ErrDeadNode) {
		t.Fatalf("double fail: err = %v", err)
	}
	if _, err := s.Recover(5); err != nil {
		t.Fatal(err)
	}
	if !s.Alive(5) {
		t.Fatal("node not alive after recovery")
	}
}

// TestChurnSequenceInvariants runs long random failure/recovery sequences
// and checks the clustering invariants after every event, plus the derived
// structures at checkpoints.
func TestChurnSequenceInvariants(t *testing.T) {
	s := newState(t, 5, 80)
	r := rand.New(rand.NewSource(9))
	dead := map[int]bool{}
	for step := 0; step < 200; step++ {
		v := r.Intn(80)
		var err error
		if dead[v] {
			_, err = s.Recover(v)
			delete(dead, v)
		} else {
			// Keep a quorum alive so the graph stays interesting.
			if len(dead) > 20 {
				continue
			}
			_, err = s.Fail(v)
			dead[v] = true
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%50 == 49 {
			g := s.AliveGraph()
			var aliveNodes []int
			for v := 0; v < 80; v++ {
				if s.Alive(v) {
					aliveNodes = append(aliveNodes, v)
				}
			}
			if !g.SubsetConnected(aliveNodes) {
				continue // survivors disconnected: backbone guarantees suspended
			}
			conn, pldel, err := s.Structures()
			if err != nil {
				t.Fatal(err)
			}
			if !conn.CDS.SubsetConnected(conn.Backbone) {
				t.Fatalf("step %d: maintained CDS disconnected", step)
			}
			if !pldel.IsPlanarEmbedding() {
				t.Fatalf("step %d: maintained backbone not planar", step)
			}
		}
	}
	if s.RoleChanges == 0 {
		t.Fatal("expected some role churn over 200 events")
	}
}

// TestChurnIsLocal: across many dominator failures, the number of role
// changes per event stays bounded by the failed node's degree (the
// locality claim).
func TestChurnIsLocal(t *testing.T) {
	s := newState(t, 6, 100)
	g := s.AliveGraph()
	events, totalChurn := 0, 0
	for v := 0; v < 100 && events < 15; v++ {
		if s.Status(v) != cluster.Dominator || !s.Alive(v) {
			continue
		}
		deg := g.Degree(v)
		changed, err := s.Fail(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(changed) > deg {
			t.Fatalf("failing %d (degree %d) changed %d roles", v, deg, len(changed))
		}
		events++
		totalChurn += len(changed)
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if events == 0 {
		t.Fatal("no dominators failed")
	}
	t.Logf("%d dominator failures, %d total promotions", events, totalChurn)
}

// TestRecoverAsDominatorWhenUncovered: a node recovering into a spot with
// no alive dominator in range must claim dominator status itself. Uses a
// deterministic two-node network: 0 — 1.
func TestRecoverAsDominatorWhenUncovered(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	s := New(pts, 1)
	if s.Status(0) != cluster.Dominator || s.Status(1) != cluster.Dominatee {
		t.Fatalf("initial roles: %v %v", s.Status(0), s.Status(1))
	}
	// Fail the dominator: node 1 is promoted.
	changed, err := s.Fail(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != 1 || s.Status(1) != cluster.Dominator {
		t.Fatalf("promotion failed: changed=%v status=%v", changed, s.Status(1))
	}
	// Fail node 1 too, then recover node 0 into an empty neighborhood.
	if _, err := s.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(0); err != nil {
		t.Fatal(err)
	}
	if s.Status(0) != cluster.Dominator {
		t.Fatal("recovered node with no dominator in range should be a dominator")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Recover node 1: a dominator (node 0) is in range, so it rejoins as
	// a dominatee even though it held dominator status while node 0 was
	// down.
	if _, err := s.Recover(1); err != nil {
		t.Fatal(err)
	}
	if s.Status(1) != cluster.Dominatee {
		t.Fatalf("node 1 rejoined as %v, want dominatee", s.Status(1))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStructuresCachedAcrossNeutralEvents: failing a non-backbone
// dominatee must not trigger a backbone recomputation — the witness patch
// splices the cached structures — and with an uncapped patch scope even a
// dominator failure is serviced by patching.
func TestStructuresCachedAcrossNeutralEvents(t *testing.T) {
	s := newState(t, 7, 80)
	s.PatchScopeFraction = 1 // dense small instance: let every patch run
	conn, _, err := s.Structures()
	if err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 1 {
		t.Fatalf("Recomputes = %d after first derivation, want 1", s.Recomputes)
	}

	// Fail a dominatee outside the backbone: no recompute.
	victim := -1
	for v := 0; v < 80; v++ {
		if s.Status(v) == cluster.Dominatee && !conn.InBackbone[v] {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Fatal("no non-backbone dominatee found")
	}
	if _, err := s.Fail(victim); err != nil {
		t.Fatal(err)
	}
	conn2, pldel2, err := s.Structures()
	if err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 1 || s.Patches != 1 {
		t.Fatalf("Recomputes = %d, Patches = %d after neutral event, want 1, 1 (cache should be patched, not rebuilt)", s.Recomputes, s.Patches)
	}
	if conn2.CDSPrime.Degree(victim) != 0 || conn2.ICDSPrime.Degree(victim) != 0 {
		t.Fatal("patched primed graphs still link the failed dominatee")
	}
	if !conn2.CDS.SubsetConnected(conn2.Backbone) {
		t.Fatal("patched CDS disconnected")
	}
	if !pldel2.IsPlanarEmbedding() {
		t.Fatal("patched backbone not planar")
	}

	// Fail a dominator: roles change, but the witness patch still services
	// the repair — only the elections inside the failure's two-hop ball
	// re-run.
	dom := -1
	for v := 0; v < 80; v++ {
		if s.Alive(v) && s.Status(v) == cluster.Dominator {
			dom = v
			break
		}
	}
	if dom == -1 {
		t.Fatal("no dominator found")
	}
	if _, err := s.Fail(dom); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Structures(); err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 1 || s.Patches != 2 {
		t.Fatalf("Recomputes = %d, Patches = %d after dominator failure, want 1, 2", s.Recomputes, s.Patches)
	}

	// A vanishingly small scope cap forces the fallback-to-rebuild path.
	s.PatchScopeFraction = 1e-9
	victim2 := -1
	for v := 0; v < 80; v++ {
		if s.Alive(v) && s.Status(v) == cluster.Dominatee {
			victim2 = v
			break
		}
	}
	if _, err := s.Fail(victim2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Structures(); err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 2 || s.PatchFallbacks != 1 {
		t.Fatalf("Recomputes = %d, PatchFallbacks = %d after capped patch, want 2, 1", s.Recomputes, s.PatchFallbacks)
	}
}

// TestPatchedClusteringMatchesFresh: the in-place patches of role-neutral
// fail/recover events must leave the cached clustering exactly equal to a
// fresh derivation from the maintained roles.
func TestPatchedClusteringMatchesFresh(t *testing.T) {
	s := newState(t, 8, 80)
	s.Clustering() // prime the cache
	r := rand.New(rand.NewSource(4))
	dead := map[int]bool{}
	for step := 0; step < 120; step++ {
		v := r.Intn(80)
		var err error
		if dead[v] {
			_, err = s.Recover(v)
			delete(dead, v)
		} else {
			if len(dead) > 15 {
				continue
			}
			_, err = s.Fail(v)
			dead[v] = true
		}
		if err != nil {
			t.Fatal(err)
		}
		patched := s.Clustering()
		s.invalidate()
		fresh := s.Clustering()
		if !reflect.DeepEqual(patched, fresh) {
			t.Fatalf("step %d: patched clustering diverged from fresh derivation", step)
		}
	}
}

// TestConnectorFailurePatchesCache: failing a connector changes no
// clustering role; the backbone reroutes through a scoped re-election,
// not a full recompute, and the patched structures match a from-scratch
// rebuild exactly.
func TestConnectorFailurePatchesCache(t *testing.T) {
	s := newState(t, 9, 80)
	s.PatchScopeFraction = 1
	conn, _, err := s.Structures()
	if err != nil {
		t.Fatal(err)
	}
	connector := -1
	for _, v := range conn.Connectors {
		if s.Status(v) != cluster.Dominator {
			connector = v
			break
		}
	}
	if connector == -1 {
		t.Skip("no non-dominator connector in this instance")
	}
	changed, err := s.Fail(connector)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("connector failure changed roles: %v", changed)
	}
	conn2, pldel2, err := s.Structures()
	if err != nil {
		t.Fatal(err)
	}
	if s.Recomputes != 1 || s.Patches != 1 {
		t.Fatalf("Recomputes = %d, Patches = %d after connector failure, want 1, 1", s.Recomputes, s.Patches)
	}
	assertMatchesRebuild(t, s, conn2, pldel2)
}

// assertMatchesRebuild compares the maintained structures against a
// from-scratch rebuild of the same roles — the bit-identical contract of
// witness patching.
func assertMatchesRebuild(t *testing.T, s *State, conn *connector.Result, pldel *graph.Graph) {
	t.Helper()
	alive, status := s.Roles()
	ref, err := FromRoles(s.Positions(), s.Radius(), alive, status)
	if err != nil {
		t.Fatalf("FromRoles: %v", err)
	}
	refConn, refPldel, err := ref.Structures()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !refConn.CDS.Equal(conn.CDS) {
		t.Fatal("patched CDS diverges from rebuild")
	}
	if !refConn.CDSPrime.Equal(conn.CDSPrime) {
		t.Fatal("patched CDS' diverges from rebuild")
	}
	if !refConn.ICDS.Equal(conn.ICDS) {
		t.Fatal("patched ICDS diverges from rebuild")
	}
	if !refConn.ICDSPrime.Equal(conn.ICDSPrime) {
		t.Fatal("patched ICDS' diverges from rebuild")
	}
	if !reflect.DeepEqual(refConn.InBackbone, conn.InBackbone) {
		t.Fatal("patched backbone membership diverges from rebuild")
	}
	if !reflect.DeepEqual(refConn.Connectors, conn.Connectors) {
		t.Fatal("patched connector list diverges from rebuild")
	}
	if !refPldel.Equal(pldel) {
		t.Fatal("patched planarization diverges from rebuild")
	}
}
