// The canonical wire encoding of churn events. One versioned, validated
// schema is shared by every producer and consumer of the event stream:
// POST /v1/epoch bodies, write-ahead-log records, synthetic schedules, and
// replay tooling all speak []WireEvent, so a batch captured on any surface
// replays bit-identically on any other (Go's JSON float encoding is
// shortest-round-trip, so positions survive the hop exactly).
//
// Event values themselves are constructed only through NewJoin, NewLeave,
// NewCrash and NewMove — raw Event literals outside this package are a
// schema change waiting to go unnoticed.
package maintain

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"geospanner/internal/geom"
)

// SchemaVersion is the current version of the wire event schema. Encoders
// stamp it on every event; decoders accept version 0 (a legacy event from
// before the field existed, identical to version 1) and the current
// version, and reject anything newer with a structured error instead of
// misreading it.
const SchemaVersion = 1

// NewJoin returns the event that brings node up at its current slot
// position (a rejoining node comes back where it died; use NewMove first
// to relocate a dead slot).
func NewJoin(node int) Event { return Event{Kind: EventJoin, Node: node} }

// NewLeave returns the event that takes node down gracefully.
func NewLeave(node int) Event { return Event{Kind: EventLeave, Node: node} }

// NewCrash returns the event that takes node down abruptly.
func NewCrash(node int) Event { return Event{Kind: EventCrash, Node: node} }

// NewMove returns the event that relocates node to to, alive or dead.
func NewMove(node int, to geom.Point) Event {
	return Event{Kind: EventMove, Node: node, To: to}
}

// WireEvent is the canonical encoded form of one churn event.
type WireEvent struct {
	// Version is the schema version the event was encoded under (0 is
	// read as 1, the version that predates the field).
	Version int `json:"v,omitempty"`
	// Kind is one of "join", "leave", "crash", "move".
	Kind string `json:"kind"`
	// Node is the addressed node slot.
	Node int `json:"node"`
	// X, Y carry the destination of a move; other kinds omit them.
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
}

// EventError is one per-record validation failure of a decoded batch.
type EventError struct {
	// Index is the position of the invalid event in the batch.
	Index int `json:"index"`
	// Reason says what is wrong with it.
	Reason string `json:"reason"`
}

// ValidationError reports every invalid record of a decoded batch, not
// just the first: a client fixing a 500-event batch wants the full list.
type ValidationError struct {
	Events []EventError
}

// Error implements error; it lists up to three failures and counts the
// rest.
func (e *ValidationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "maintain: %d invalid event(s):", len(e.Events))
	for i, ee := range e.Events {
		if i == 3 {
			fmt.Fprintf(&b, " (+%d more)", len(e.Events)-i)
			break
		}
		fmt.Fprintf(&b, " [%d] %s;", ee.Index, ee.Reason)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// EncodeWire converts events to their canonical wire form, stamping the
// current schema version. It is the inverse of DecodeWire.
func EncodeWire(events []Event) []WireEvent {
	wire := make([]WireEvent, 0, len(events))
	for _, e := range events {
		we := WireEvent{Version: SchemaVersion, Kind: e.Kind.String(), Node: e.Node}
		if e.Kind == EventMove {
			we.X, we.Y = e.To.X, e.To.Y
		}
		wire = append(wire, we)
	}
	return wire
}

// DecodeWire validates and converts a wire batch. On failure it returns a
// *ValidationError naming every invalid record (index + reason); the batch
// is all-or-nothing, so a partially invalid batch applies no events.
func DecodeWire(wire []WireEvent) ([]Event, error) {
	events := make([]Event, 0, len(wire))
	var errs []EventError
	bad := func(i int, format string, args ...any) {
		errs = append(errs, EventError{Index: i, Reason: fmt.Sprintf(format, args...)})
	}
	for i, we := range wire {
		if we.Version != 0 && we.Version != SchemaVersion {
			bad(i, "unsupported schema version %d (this build speaks <= %d)", we.Version, SchemaVersion)
			continue
		}
		if we.Node < 0 {
			bad(i, "negative node id %d", we.Node)
			continue
		}
		var e Event
		switch we.Kind {
		case "join":
			e = NewJoin(we.Node)
		case "leave":
			e = NewLeave(we.Node)
		case "crash":
			e = NewCrash(we.Node)
		case "move":
			if math.IsNaN(we.X) || math.IsInf(we.X, 0) || math.IsNaN(we.Y) || math.IsInf(we.Y, 0) {
				bad(i, "non-finite move destination (%v, %v)", we.X, we.Y)
				continue
			}
			e = NewMove(we.Node, geom.Point{X: we.X, Y: we.Y})
		default:
			bad(i, "unknown kind %q", we.Kind)
			continue
		}
		events = append(events, e)
	}
	if len(errs) > 0 {
		return nil, &ValidationError{Events: errs}
	}
	return events, nil
}

// MarshalEvents serializes a batch as a JSON array of wire events — the
// payload format of WAL epoch records and the body shape of POST
// /v1/epoch.
func MarshalEvents(events []Event) ([]byte, error) {
	return json.Marshal(EncodeWire(events))
}

// UnmarshalEvents parses and validates a MarshalEvents payload.
func UnmarshalEvents(data []byte) ([]Event, error) {
	var wire []WireEvent
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("maintain: event payload: %w", err)
	}
	return DecodeWire(wire)
}
