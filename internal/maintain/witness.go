// Witness-scoped incremental maintenance. Every derived decision — a
// connector election, an LDel certificate — is a function of a bounded
// neighborhood, and the witness layers (connector.Witness, ldel.Witness)
// record exactly which candidates decided each one. Events therefore do
// not invalidate the derived caches: they accumulate a *scope* (the event
// node and its neighbors at event time), and the next Structures call
// re-runs only the elections whose witness scope intersects the
// two-hop ball around the accumulated scope, splicing the patch into the
// cached structures. The result is pinned bit-identical to a from-scratch
// rebuild by TestChurnBatchesMatchRebuild; DESIGN.md §14 carries the
// canonicity argument for why the untouched elections cannot change.
package maintain

import (
	"fmt"
	"sort"

	"geospanner/internal/cluster"
	"geospanner/internal/connector"
	"geospanner/internal/graph"
	"geospanner/internal/ldel"
)

// DefaultPatchScopeFraction is the scope-size fraction (of alive nodes)
// above which Structures abandons witness patching for the accumulated
// events and rebuilds from scratch — past that point the patch would
// re-run most elections anyway, and the from-scratch build has better
// constants. PatchScopeFraction == 0 selects this default; a negative
// value disables witness patching entirely (every structural event drops
// the caches — the measurement baseline for recompute_ratio).
const DefaultPatchScopeFraction = 0.25

// patchingEnabled reports whether witness patching is on.
func (s *State) patchingEnabled() bool { return s.PatchScopeFraction >= 0 }

// patchScopeFraction resolves the configured fraction.
func (s *State) patchScopeFraction() float64 {
	if s.PatchScopeFraction == 0 {
		return DefaultPatchScopeFraction
	}
	return s.PatchScopeFraction
}

// noteScope records that a structural event touched node v: v and its
// alive neighbors (at event time) seed the dirty scope of the next patch.
// With patching disabled this degrades to the conservative baseline —
// drop every derived cache.
func (s *State) noteScope(v int) {
	if !s.patchingEnabled() {
		s.cachedConn = nil
		s.cachedLDel = nil
		s.wit = nil
		s.ldwit = nil
		s.pending = nil
		s.pendingReloc = nil
		return
	}
	if s.cachedConn == nil {
		return // nothing cached to patch; the next Structures rebuilds
	}
	if s.pending == nil {
		s.pending = make(map[int]bool)
	}
	s.pending[v] = true
	for _, u := range s.aliveNeighbors(v) {
		s.pending[u] = true
	}
}

// noteReloc records that node v's position (and hence its unit-disk
// edges) changed. Relocations happen while the node is dead, so no cached
// election consulted the new position yet; the patch only needs the flag
// to refresh v's induced-graph edges if v is (or becomes) a backbone
// member.
func (s *State) noteReloc(v int) {
	if !s.patchingEnabled() || s.cachedConn == nil {
		return
	}
	if s.pendingReloc == nil {
		s.pendingReloc = make(map[int]bool)
	}
	s.pendingReloc[v] = true
}

// hasPendingWork reports whether the accumulated events can have changed
// the cached structures: any scoped event, or a relocation of a node the
// cache counts as a backbone member (a dead node's move is geometry-only).
func (s *State) hasPendingWork() bool {
	if len(s.pending) > 0 {
		return true
	}
	for v := range s.pendingReloc {
		if s.cachedConn.InBackbone[v] {
			return true
		}
	}
	return false
}

// clearPending resets the accumulated patch scope.
func (s *State) clearPending() {
	s.pending = nil
	s.pendingReloc = nil
}

// stateView adapts the maintained state to connector.View: alive-UDG
// adjacency over the full graph's current edges.
type stateView struct{ s *State }

func (v stateView) Adjacent(a, b int) bool {
	return v.s.alive[a] && v.s.alive[b] && v.s.full.HasEdge(a, b)
}

func (v stateView) AliveNeighbors(x int) []int { return v.s.aliveNeighbors(x) }

func containsSorted(list []int, x int) bool {
	i := sort.SearchInts(list, x)
	return i < len(list) && list[i] == x
}

// tryPatch re-runs the elections whose witness scope intersects the
// accumulated dirty scope and splices the results into the cached
// structures in place. It returns false — leaving the caches untouched
// except for already-exact splices being impossible (it mutates nothing
// before committing to run) — when the scope exceeds the fallback
// threshold. On any internal error it invalidates the caches and returns
// false so Structures falls back to the from-scratch build.
func (s *State) tryPatch(cl *cluster.Result) bool {
	// Patch scope: the accumulated per-event seeds plus one more hop. Seeds
	// are {event node} ∪ N(event node) at event time; the extra hop covers
	// decisions that read two-hop state (two-hop dominator lists, stage-2
	// propagation).
	scope := make(map[int]bool, 2*len(s.pending))
	for v := range s.pending {
		scope[v] = true
		for _, u := range s.aliveNeighbors(v) {
			scope[u] = true
		}
	}
	// The threshold weighs the patch's work — elections re-run around
	// alive scope nodes — against the full rebuild. Dead scope nodes only
	// index old records and cost nothing.
	aliveScope := 0
	for v := range scope {
		if s.alive[v] {
			aliveScope++
		}
	}
	if float64(aliveScope) > s.patchScopeFraction()*float64(s.AliveCount()) {
		s.PatchFallbacks++
		return false
	}
	scopeList := make([]int, 0, len(scope))
	for v := range scope {
		scopeList = append(scopeList, v)
	}
	sort.Ints(scopeList)

	view := stateView{s}
	conn := s.cachedConn
	cds := conn.CDS

	// Stage 0/1: dirty keys are every election a scope node witnessed
	// (byNode reverse index) plus every candidacy a scope node holds in the
	// current clustering — the latter discovers brand-new keys.
	dirty01 := make(map[connector.KeyID]bool)
	for _, v := range scopeList {
		for _, k := range s.wit.KeysOf(v) {
			if k.Stage < 2 {
				dirty01[k] = true
			}
		}
		if !s.alive[v] || cl.Status[v] != cluster.Dominatee {
			continue
		}
		doms := cl.DominatorsOf[v]
		for i, u := range doms {
			for _, w := range doms[i+1:] {
				dirty01[connector.KeyID{U: u, V: w, Stage: 0}] = true
			}
		}
		for _, u := range doms {
			for _, w := range cl.TwoHopDominators[v] {
				dirty01[connector.KeyID{U: u, V: w, Stage: 1}] = true
			}
		}
	}
	keys01 := make([]connector.KeyID, 0, len(dirty01))
	for k := range dirty01 {
		keys01 = append(keys01, k)
	}
	connector.SortKeyIDs(keys01)

	// Each splice's CDS delta is applied immediately: a later key may
	// re-add an edge an earlier key dropped, and deferring the edits would
	// lose that ordering.
	changed1 := make(map[connector.KeyID]bool)
	for _, k := range keys01 {
		delta := s.wit.Splice(k, connector.RecomputeRecord(view, cl, k, nil))
		for _, e := range delta.RemovedEdges {
			cds.RemoveEdge(e.U, e.V)
		}
		for _, e := range delta.AddedEdges {
			cds.AddEdge(e.U, e.V)
		}
		if k.Stage == 1 && delta.WinnersChanged {
			changed1[k] = true
		}
	}

	// Stage 2: downstream of every changed stage-1 winner set, plus scoped
	// responders' existing keys, plus new responder candidacies a scope
	// node gained against current stage-1 winners in its neighborhood.
	dirty2 := make(map[connector.KeyID]bool)
	for k := range changed1 {
		dirty2[connector.KeyID{U: k.U, V: k.V, Stage: 2}] = true
	}
	for _, v := range scopeList {
		for _, k := range s.wit.KeysOf(v) {
			if k.Stage == 2 {
				dirty2[k] = true
			}
		}
		if !s.alive[v] || cl.Status[v] != cluster.Dominatee {
			continue
		}
		for _, w := range s.aliveNeighbors(v) {
			for _, k1 := range s.wit.Stage1WonBy(w) {
				if containsSorted(cl.DominatorsOf[v], k1.V) && containsSorted(cl.TwoHopDominators[v], k1.U) {
					dirty2[connector.KeyID{U: k1.U, V: k1.V, Stage: 2}] = true
				}
			}
		}
	}
	keys2 := make([]connector.KeyID, 0, len(dirty2))
	for k := range dirty2 {
		keys2 = append(keys2, k)
	}
	connector.SortKeyIDs(keys2)
	for _, k := range keys2 {
		delta := s.wit.Splice(k, connector.RecomputeRecord(view, cl, k, s.wit.Stage1Winners(k.U, k.V)))
		for _, e := range delta.RemovedEdges {
			cds.RemoveEdge(e.U, e.V)
		}
		for _, e := range delta.AddedEdges {
			cds.AddEdge(e.U, e.V)
		}
	}

	// Backbone membership diff, plus forced refresh of relocated members:
	// a node that was and stays a member across a move keeps stale induced
	// edges until this leave-and-rejoin.
	n := len(s.pts)
	newIn := make([]bool, n)
	isConn := make([]bool, n)
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		if s.wit.IsConnector(v) {
			isConn[v] = true
			newIn[v] = true
		} else if cl.Status[v] == cluster.Dominator {
			newIn[v] = true
		}
	}

	icds := conn.ICDS
	ldelDirty := make(map[int]bool)
	icdsLeave := func(v int) {
		ldelDirty[v] = true
		for _, u := range append([]int(nil), icds.Neighbors(v)...) {
			icds.RemoveEdge(v, u)
			ldelDirty[u] = true
		}
	}
	icdsJoin := func(v int) {
		ldelDirty[v] = true
		for _, u := range s.full.Neighbors(v) {
			if s.alive[u] && newIn[u] && u != v {
				icds.AddEdge(v, u)
				ldelDirty[u] = true
			}
		}
	}
	for v := 0; v < n; v++ {
		switch {
		case conn.InBackbone[v] && !newIn[v]:
			icdsLeave(v)
		case !conn.InBackbone[v] && newIn[v]:
			// Joins run after every leave below.
		case conn.InBackbone[v] && newIn[v] && s.pendingReloc[v]:
			icdsLeave(v)
		}
	}
	for v := 0; v < n; v++ {
		if !conn.InBackbone[v] && newIn[v] {
			icdsJoin(v)
		} else if conn.InBackbone[v] && newIn[v] && s.pendingReloc[v] {
			icdsJoin(v)
		}
	}

	// Rebuild the aggregate views the splices do not track edge-by-edge:
	// membership lists and the primed (coverage) graphs — mirroring
	// connector's assemble exactly so patched and rebuilt Results are
	// bit-identical.
	conn.Cluster = cl
	conn.InBackbone = newIn
	conn.Connectors = nil
	conn.Backbone = nil
	for v := 0; v < n; v++ {
		if isConn[v] {
			conn.Connectors = append(conn.Connectors, v)
		}
		if newIn[v] {
			conn.Backbone = append(conn.Backbone, v)
		}
	}
	conn.CDSPrime = cds.Clone()
	conn.ICDSPrime = icds.Clone()
	for v := 0; v < n; v++ {
		for _, u := range cl.DominatorsOf[v] {
			conn.CDSPrime.AddEdge(v, u)
			conn.ICDSPrime.AddEdge(v, u)
		}
	}

	dirtyList := make([]int, 0, len(ldelDirty))
	for v := range ldelDirty {
		dirtyList = append(dirtyList, v)
	}
	sort.Ints(dirtyList)
	pldel, err := s.ldwit.Patch(icds, newIn, dirtyList)
	if err != nil {
		// The caches are half-spliced; drop them and let Structures rebuild.
		s.invalidate()
		return false
	}
	s.cachedLDel = pldel
	return true
}

// structures is the full-recompute path: build the connector and LDel
// layers from the current clustering, with witnesses when patching is
// enabled.
func (s *State) structures(cl *cluster.Result) (*connector.Result, *graph.Graph, error) {
	g := s.AliveGraph()
	var conn *connector.Result
	if s.patchingEnabled() {
		var wit *connector.Witness
		conn, wit = connector.CentralizedWitness(g, cl)
		res, ldwit, err := ldel.CentralizedWitness(conn.ICDS, conn.InBackbone, s.radius)
		if err != nil {
			s.invalidate()
			return nil, nil, fmt.Errorf("maintain: planarize: %w", err)
		}
		s.wit = wit
		s.ldwit = ldwit
		s.cachedConn = conn
		s.cachedLDel = res.PLDel
	} else {
		conn = connector.Centralized(g, cl)
		res, err := ldel.Centralized(conn.ICDS, conn.InBackbone, s.radius)
		if err != nil {
			s.invalidate()
			return nil, nil, fmt.Errorf("maintain: planarize: %w", err)
		}
		s.wit = nil
		s.ldwit = nil
		s.cachedConn = conn
		s.cachedLDel = res.PLDel
	}
	s.Recomputes++
	return s.cachedConn, s.cachedLDel, nil
}
