package maintain

import (
	"errors"
	"math"
	"strings"
	"testing"

	"geospanner/internal/geom"
)

// TestWireRoundTrip: encode → marshal → unmarshal → identical events,
// versions stamped. The JSON hop must be lossless including float
// positions (Go's encoder is shortest-round-trip).
func TestWireRoundTrip(t *testing.T) {
	events := []Event{
		NewJoin(3),
		NewLeave(7),
		NewCrash(0),
		NewMove(12, geom.Point{X: 1.0 / 3.0, Y: math.Nextafter(100, 101)}),
	}
	data, err := MarshalEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEvents(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip length %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	for i, we := range EncodeWire(events) {
		if we.Version != SchemaVersion {
			t.Fatalf("event %d encoded with version %d", i, we.Version)
		}
	}
}

// TestDecodeWireCollectsEveryError pins the structured validation
// contract: every invalid record is reported with its index and reason,
// and a batch with any invalid record applies nothing.
func TestDecodeWireCollectsEveryError(t *testing.T) {
	wire := []WireEvent{
		{Kind: "join", Node: 1},                         // ok (legacy version 0)
		{Kind: "explode", Node: 2},                      // unknown kind
		{Version: SchemaVersion + 1, Kind: "join"},      // future version
		{Kind: "move", Node: 3, X: math.NaN()},          // non-finite
		{Kind: "crash", Node: -1},                       // negative node
		{Version: SchemaVersion, Kind: "move", Node: 4}, // ok
	}
	events, err := DecodeWire(wire)
	if events != nil {
		t.Fatalf("invalid batch returned events: %v", events)
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want *ValidationError", err)
	}
	wantIdx := []int{1, 2, 3, 4}
	if len(ve.Events) != len(wantIdx) {
		t.Fatalf("got %d errors %v, want indices %v", len(ve.Events), ve.Events, wantIdx)
	}
	for i, ee := range ve.Events {
		if ee.Index != wantIdx[i] || ee.Reason == "" {
			t.Fatalf("error %d: %+v, want index %d with a reason", i, ee, wantIdx[i])
		}
	}
	if msg := ve.Error(); !strings.Contains(msg, "4 invalid") || !strings.Contains(msg, "+1 more") {
		t.Fatalf("error message %q should count all failures and elide past three", msg)
	}
}

// TestConstructorsMatchApplyBatch: constructor-built events drive
// ApplyBatch exactly like the former raw literals.
func TestConstructorsMatchApplyBatch(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	s := New(append([]geom.Point(nil), pts...), 1.5)
	st := s.ApplyBatch([]Event{
		NewCrash(1),
		NewCrash(1), // noise: already dead
		NewMove(2, geom.Point{X: 2.5, Y: 0}),
		NewJoin(1),
		NewLeave(3),
	}, 0)
	if st.Applied != 4 || st.Rejected != 1 || st.Moves != 1 {
		t.Fatalf("batch stats %+v", st)
	}
	if s.Alive(3) || !s.Alive(1) {
		t.Fatalf("alive flags wrong after batch")
	}
	if got := s.Positions()[2]; got != (geom.Point{X: 2.5, Y: 0}) {
		t.Fatalf("move not applied: %v", got)
	}
}

// TestUnmarshalEventsRejectsMalformedJSON: a syntactically broken payload
// fails with a plain error, not a panic or a partial batch.
func TestUnmarshalEventsRejectsMalformedJSON(t *testing.T) {
	if _, err := UnmarshalEvents([]byte(`[{"kind":`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
