// Package delaunay implements the Delaunay triangulation of a planar point
// set using an incremental Bowyer–Watson construction on top of the robust
// predicates in internal/geom.
//
// The triangulation is used in two ways by the spanner pipeline:
//
//   - globally, to build the UDel baseline (Delaunay edges no longer than
//     the transmission radius), and
//   - per node, to compute the Delaunay triangulation of a node's 1-hop
//     neighborhood — the building block of the localized Delaunay graph
//     LDel (Li, Calinescu, Wan, INFOCOM 2002), reviewed as Algorithm 2 of
//     the reproduced paper.
//
// Ties between co-circular points are broken by insertion order; the paper
// assumes no four points are co-circular, and the pipeline's random
// instances satisfy that with probability one.
package delaunay

import (
	"errors"
	"fmt"
	"sort"

	"geospanner/internal/geom"
)

// ErrDuplicatePoints is returned when the input contains two points with
// exactly equal coordinates. Network nodes always have distinct positions.
var ErrDuplicatePoints = errors.New("delaunay: duplicate input points")

// Triangle is a triangle of the triangulation. A, B, C index into the point
// slice passed to Triangulate and are stored in counterclockwise order.
type Triangle struct {
	A, B, C int
}

// Canonical returns the triangle with its vertex indices rotated so the
// smallest index comes first, preserving orientation. Two triangles on the
// same vertices in the same orientation compare equal after Canonical.
func (t Triangle) Canonical() Triangle {
	for t.A > t.B || t.A > t.C {
		t.A, t.B, t.C = t.B, t.C, t.A
	}
	return t
}

// Has reports whether vertex index v is a corner of t.
func (t Triangle) Has(v int) bool { return t.A == v || t.B == v || t.C == v }

// String implements fmt.Stringer.
func (t Triangle) String() string { return fmt.Sprintf("△(%d,%d,%d)", t.A, t.B, t.C) }

// Edge is an undirected edge between two point indices, normalized so
// U < V.
type Edge struct {
	U, V int
}

// MakeEdge returns the normalized edge {min(i,j), max(i,j)}.
func MakeEdge(i, j int) Edge {
	if i > j {
		i, j = j, i
	}
	return Edge{U: i, V: j}
}

// Triangulation is the result of Triangulate.
type Triangulation struct {
	// Points is the input point slice (not copied).
	Points []geom.Point
	// Triangles lists all Delaunay triangles in counterclockwise order.
	Triangles []Triangle

	edgeSet map[Edge]struct{}
}

// Triangulate computes the Delaunay triangulation of pts. The input slice
// is not modified. Inputs with fewer than three points, or with all points
// collinear, produce a triangulation with no triangles (Edges is then
// empty; callers needing connectivity on degenerate inputs must handle it,
// as the LDel construction does through its Gabriel edges).
func Triangulate(pts []geom.Point) (*Triangulation, error) {
	seen := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		if _, dup := seen[p]; dup {
			return nil, ErrDuplicatePoints
		}
		seen[p] = struct{}{}
	}

	tri := &Triangulation{Points: pts}
	if len(pts) < 3 {
		tri.buildEdgeSet()
		return tri, nil
	}

	bw := newBowyerWatson(pts)
	for i := range pts {
		bw.insert(i)
	}
	tri.Triangles = bw.realTriangles()
	tri.buildEdgeSet()
	return tri, nil
}

// Edges returns all undirected edges of the triangulation in deterministic
// (sorted) order.
func (t *Triangulation) Edges() []Edge {
	edges := make([]Edge, 0, len(t.edgeSet))
	for e := range t.edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// HasEdge reports whether {i, j} is an edge of the triangulation.
func (t *Triangulation) HasEdge(i, j int) bool {
	_, ok := t.edgeSet[MakeEdge(i, j)]
	return ok
}

// TrianglesWith returns all triangles having vertex index v as a corner.
func (t *Triangulation) TrianglesWith(v int) []Triangle {
	var out []Triangle
	for _, tr := range t.Triangles {
		if tr.Has(v) {
			out = append(out, tr)
		}
	}
	return out
}

func (t *Triangulation) buildEdgeSet() {
	t.edgeSet = make(map[Edge]struct{}, 3*len(t.Triangles))
	for _, tr := range t.Triangles {
		t.edgeSet[MakeEdge(tr.A, tr.B)] = struct{}{}
		t.edgeSet[MakeEdge(tr.B, tr.C)] = struct{}{}
		t.edgeSet[MakeEdge(tr.C, tr.A)] = struct{}{}
	}
}

// bowyerWatson holds the construction state. Vertex indices 0..n-1 refer to
// real points; n, n+1, n+2 are the super-triangle vertices placed far
// outside the input's bounding box.
type bowyerWatson struct {
	pts   []geom.Point // real points followed by the 3 super vertices
	nReal int
	tris  []Triangle
	alive []bool
}

func newBowyerWatson(pts []geom.Point) *bowyerWatson {
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	span := (maxX - minX) + (maxY - minY) + 1
	// Far enough that no circumcircle of (non-degenerate) real triangles
	// reaches a super vertex in practice; exact predicates keep the large
	// coordinates safe.
	m := span * 1e9

	all := make([]geom.Point, len(pts), len(pts)+3)
	copy(all, pts)
	all = append(all,
		geom.Pt(cx-2*m, cy-m),
		geom.Pt(cx+2*m, cy-m),
		geom.Pt(cx, cy+2*m),
	)

	bw := &bowyerWatson{pts: all, nReal: len(pts)}
	n := len(pts)
	super := Triangle{A: n, B: n + 1, C: n + 2}
	if geom.Orient(all[super.A], all[super.B], all[super.C]) != geom.Positive {
		super.B, super.C = super.C, super.B
	}
	bw.tris = append(bw.tris, super)
	bw.alive = append(bw.alive, true)
	return bw
}

func (bw *bowyerWatson) insert(pi int) {
	p := bw.pts[pi]

	// Collect bad triangles: those whose open circumdisk contains p.
	type dirEdge struct{ a, b int }
	edgeCount := make(map[Edge]int)
	edgeDir := make(map[Edge]dirEdge)
	var hadBad bool
	for ti, tr := range bw.tris {
		if !bw.alive[ti] {
			continue
		}
		if geom.InCircle(bw.pts[tr.A], bw.pts[tr.B], bw.pts[tr.C], p) == geom.Positive {
			bw.alive[ti] = false
			hadBad = true
			for _, de := range [3]dirEdge{{tr.A, tr.B}, {tr.B, tr.C}, {tr.C, tr.A}} {
				e := MakeEdge(de.a, de.b)
				edgeCount[e]++
				edgeDir[e] = de
			}
		}
	}
	if !hadBad {
		// p is on (or outside) every circumcircle — co-circular tie or a
		// point exactly on an edge. Fall back to locating the containing
		// triangle and splitting it so the point is not lost.
		bw.insertBySplit(pi)
		return
	}

	// The cavity boundary consists of edges seen exactly once. New
	// triangles fan from p, preserving the boundary edge direction so
	// orientation stays counterclockwise.
	for e, cnt := range edgeCount {
		if cnt != 1 {
			continue
		}
		d := edgeDir[e]
		bw.addTriangle(Triangle{A: d.a, B: d.b, C: pi})
	}
}

// insertBySplit handles the rare tie case where the inserted point is
// strictly inside no circumcircle (e.g. exactly co-circular with an
// existing triangle). It splits the triangle containing the point.
func (bw *bowyerWatson) insertBySplit(pi int) {
	p := bw.pts[pi]
	for ti, tr := range bw.tris {
		if !bw.alive[ti] {
			continue
		}
		oab := geom.Orient(bw.pts[tr.A], bw.pts[tr.B], p)
		obc := geom.Orient(bw.pts[tr.B], bw.pts[tr.C], p)
		oca := geom.Orient(bw.pts[tr.C], bw.pts[tr.A], p)
		if oab == geom.Negative || obc == geom.Negative || oca == geom.Negative {
			continue
		}
		bw.alive[ti] = false
		if oab != geom.Zero {
			bw.addTriangle(Triangle{A: tr.A, B: tr.B, C: pi})
		}
		if obc != geom.Zero {
			bw.addTriangle(Triangle{A: tr.B, B: tr.C, C: pi})
		}
		if oca != geom.Zero {
			bw.addTriangle(Triangle{A: tr.C, B: tr.A, C: pi})
		}
		return
	}
	// Point coincides with an existing vertex or lies outside the super
	// triangle; both are impossible for deduplicated in-box inputs.
}

func (bw *bowyerWatson) addTriangle(t Triangle) {
	bw.tris = append(bw.tris, t)
	bw.alive = append(bw.alive, true)
}

// realTriangles returns the surviving triangles that touch no super vertex,
// in deterministic order.
func (bw *bowyerWatson) realTriangles() []Triangle {
	var out []Triangle
	for ti, tr := range bw.tris {
		if !bw.alive[ti] {
			continue
		}
		if tr.A >= bw.nReal || tr.B >= bw.nReal || tr.C >= bw.nReal {
			continue
		}
		out = append(out, tr.Canonical())
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	return out
}

// Validate verifies the Delaunay property by brute force: no input point
// lies strictly inside any triangle's circumcircle, and every triangle is
// counterclockwise. It exists for downstream debugging and for tests of
// code that perturbs triangulations.
func (t *Triangulation) Validate() error {
	for _, tr := range t.Triangles {
		a, b, c := t.Points[tr.A], t.Points[tr.B], t.Points[tr.C]
		if geom.Orient(a, b, c) != geom.Positive {
			return fmt.Errorf("delaunay: triangle %v is not counterclockwise", tr)
		}
		for i, p := range t.Points {
			if tr.Has(i) {
				continue
			}
			if geom.InCircle(a, b, c, p) == geom.Positive {
				return fmt.Errorf("delaunay: point %d inside circumcircle of %v", i, tr)
			}
		}
	}
	return nil
}

// NeighborsOf returns the vertex indices adjacent to v in the
// triangulation, in increasing order.
func (t *Triangulation) NeighborsOf(v int) []int {
	seen := make(map[int]bool)
	for _, tr := range t.Triangles {
		if !tr.Has(v) {
			continue
		}
		for _, u := range [3]int{tr.A, tr.B, tr.C} {
			if u != v {
				seen[u] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}
