package delaunay

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"geospanner/internal/geom"
)

func randPoints(r *rand.Rand, n int, span float64) []geom.Point {
	pts := make([]geom.Point, 0, n)
	seen := make(map[geom.Point]struct{}, n)
	for len(pts) < n {
		p := geom.Pt(r.Float64()*span, r.Float64()*span)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		pts = append(pts, p)
	}
	return pts
}

func TestTriangulateSmallCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		tr, err := Triangulate(nil)
		if err != nil || len(tr.Triangles) != 0 || len(tr.Edges()) != 0 {
			t.Fatalf("unexpected: %v %v", tr, err)
		}
	})
	t.Run("two points", func(t *testing.T) {
		tr, err := Triangulate([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)})
		if err != nil || len(tr.Triangles) != 0 {
			t.Fatalf("unexpected: %v %v", tr, err)
		}
	})
	t.Run("triangle", func(t *testing.T) {
		tr, err := Triangulate([]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(0, 3)})
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Triangles) != 1 {
			t.Fatalf("got %d triangles, want 1", len(tr.Triangles))
		}
		if got := len(tr.Edges()); got != 3 {
			t.Fatalf("got %d edges, want 3", got)
		}
	})
	t.Run("collinear", func(t *testing.T) {
		tr, err := Triangulate([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)})
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Triangles) != 0 {
			t.Fatalf("collinear points produced triangles: %v", tr.Triangles)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		_, err := Triangulate([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(0, 0)})
		if !errors.Is(err, ErrDuplicatePoints) {
			t.Fatalf("err = %v, want ErrDuplicatePoints", err)
		}
	})
}

func TestTriangulateQuad(t *testing.T) {
	// Non-co-circular quadrilateral: the Delaunay diagonal is forced.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 3), geom.Pt(0, 5)}
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Triangles) != 2 {
		t.Fatalf("got %d triangles, want 2", len(tr.Triangles))
	}
	assertDelaunay(t, tr)
}

// assertDelaunay verifies the empty-circumcircle property by brute force.
func assertDelaunay(t *testing.T, tr *Triangulation) {
	t.Helper()
	for _, triangle := range tr.Triangles {
		a := tr.Points[triangle.A]
		b := tr.Points[triangle.B]
		c := tr.Points[triangle.C]
		if geom.Orient(a, b, c) != geom.Positive {
			t.Fatalf("triangle %v is not counterclockwise", triangle)
		}
		for i, p := range tr.Points {
			if triangle.Has(i) {
				continue
			}
			if geom.InCircle(a, b, c, p) == geom.Positive {
				t.Fatalf("point %d (%v) strictly inside circumcircle of %v", i, p, triangle)
			}
		}
	}
}

func TestTriangulateRandomIsDelaunay(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 4 + r.Intn(60)
		tr, err := Triangulate(randPoints(r, n, 100))
		if err != nil {
			t.Fatal(err)
		}
		assertDelaunay(t, tr)
	}
}

func TestTriangulateEulerFormula(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(80)
		pts := randPoints(r, n, 1000)
		tr, err := Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		h := len(geom.ConvexHull(pts))
		// General position (random floats): T = 2n - 2 - h, E = 3n - 3 - h.
		if got, want := len(tr.Triangles), 2*n-2-h; got != want {
			t.Fatalf("trial %d: %d triangles, want %d (n=%d h=%d)", trial, got, want, n, h)
		}
		if got, want := len(tr.Edges()), 3*n-3-h; got != want {
			t.Fatalf("trial %d: %d edges, want %d (n=%d h=%d)", trial, got, want, n, h)
		}
	}
}

func TestTriangulatePlanar(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 40, 50)
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	edges := tr.Edges()
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			s1 := geom.Seg(pts[edges[i].U], pts[edges[i].V])
			s2 := geom.Seg(pts[edges[j].U], pts[edges[j].V])
			if s1.CrossesProperly(s2) {
				t.Fatalf("edges %v and %v cross", edges[i], edges[j])
			}
		}
	}
}

func TestTriangulateContainsNearestNeighborEdges(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 50, 200)
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		best, bestD := -1, math.Inf(1)
		for j := range pts {
			if i == j {
				continue
			}
			if d := pts[i].Dist2(pts[j]); d < bestD {
				best, bestD = j, d
			}
		}
		if !tr.HasEdge(i, best) {
			t.Fatalf("nearest-neighbor edge (%d,%d) missing", i, best)
		}
	}
}

func TestTriangulateContainsGabrielEdges(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 40, 100)
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			gabriel := true
			for k := range pts {
				if k == i || k == j {
					continue
				}
				if geom.InDiametralDisk(pts[i], pts[j], pts[k]) {
					gabriel = false
					break
				}
			}
			if gabriel && !tr.HasEdge(i, j) {
				t.Fatalf("Gabriel edge (%d,%d) missing from Delaunay", i, j)
			}
		}
	}
}

func TestTriangulateCoverageArea(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 60, 300)
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	var triArea float64
	for _, triangle := range tr.Triangles {
		a := tr.Points[triangle.A]
		b := tr.Points[triangle.B]
		c := tr.Points[triangle.C]
		triArea += geom.PolygonArea([]geom.Point{a, b, c})
	}
	hullArea := geom.PolygonArea(geom.ConvexHull(pts))
	if math.Abs(triArea-hullArea) > 1e-6*hullArea {
		t.Fatalf("triangle area %v != hull area %v", triArea, hullArea)
	}
}

func TestTriangulateCocircular(t *testing.T) {
	// A perfect 4-point square plus center: co-circular ties must still
	// produce a valid triangulation (4 triangles around the center).
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2), geom.Pt(1, 1),
	}
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Triangles) != 4 {
		t.Fatalf("got %d triangles, want 4: %v", len(tr.Triangles), tr.Triangles)
	}
	assertDelaunay(t, tr)
}

func TestTriangulateCocircularOnly(t *testing.T) {
	// Only the square: either diagonal is a valid (weak) Delaunay choice.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2)}
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Triangles) != 2 {
		t.Fatalf("got %d triangles, want 2: %v", len(tr.Triangles), tr.Triangles)
	}
	// Weak Delaunay: no point strictly inside any circumcircle.
	assertDelaunay(t, tr)
}

func TestTriangulateGrid(t *testing.T) {
	// Integer grid: many co-circular quadruples at once.
	var pts []geom.Point
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			pts = append(pts, geom.Pt(float64(x), float64(y)))
		}
	}
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	assertDelaunay(t, tr)
	// 25 points, hull has 16 vertices (all boundary points are hull
	// vertices only at corners... with collinear boundary points the
	// strict hull has 4 vertices). Coverage area must equal 16.
	var triArea float64
	for _, triangle := range tr.Triangles {
		triArea += geom.PolygonArea([]geom.Point{
			tr.Points[triangle.A], tr.Points[triangle.B], tr.Points[triangle.C],
		})
	}
	if math.Abs(triArea-16) > 1e-9 {
		t.Fatalf("grid coverage area = %v, want 16", triArea)
	}
}

func TestTrianglesWith(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 3), geom.Pt(0, 5)}
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range pts {
		for _, triangle := range tr.TrianglesWith(v) {
			if !triangle.Has(v) {
				t.Fatalf("TrianglesWith(%d) returned %v", v, triangle)
			}
		}
	}
}

func TestCanonical(t *testing.T) {
	tr := Triangle{A: 5, B: 1, C: 3}
	c := tr.Canonical()
	if c.A != 1 || c.B != 3 || c.C != 5 {
		t.Fatalf("Canonical = %v", c)
	}
	// Orientation preserved: (5,1,3) -> (1,3,5) is the same cyclic order.
	if (Triangle{A: 1, B: 3, C: 5}).Canonical() != c {
		t.Fatal("cyclic rotations should canonicalize equally")
	}
}

func TestMakeEdge(t *testing.T) {
	if MakeEdge(5, 2) != (Edge{U: 2, V: 5}) {
		t.Fatal("MakeEdge should normalize order")
	}
	if MakeEdge(2, 5) != MakeEdge(5, 2) {
		t.Fatal("MakeEdge not symmetric")
	}
}

func TestValidate(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tr, err := Triangulate(randPoints(r, 40, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a triangle: validation must notice.
	if len(tr.Triangles) > 0 {
		tr.Triangles[0].A, tr.Triangles[0].B = tr.Triangles[0].B, tr.Triangles[0].A
		if err := tr.Validate(); err == nil {
			t.Fatal("validation missed a clockwise triangle")
		}
	}
}

func TestNeighborsOf(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 3), geom.Pt(0, 5)}
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range pts {
		nbrs := tr.NeighborsOf(v)
		for _, u := range nbrs {
			if !tr.HasEdge(v, u) {
				t.Fatalf("NeighborsOf(%d) returned non-edge %d", v, u)
			}
		}
		if len(nbrs) != degreeInEdges(tr, v) {
			t.Fatalf("NeighborsOf(%d) size mismatch", v)
		}
	}
}

func degreeInEdges(tr *Triangulation, v int) int {
	count := 0
	for _, e := range tr.Edges() {
		if e.U == v || e.V == v {
			count++
		}
	}
	return count
}
