package geospanner_test

import (
	"fmt"

	"geospanner"
)

// ExampleNewServer runs the long-lived topology service in process: build
// a server over a random connected instance, apply one churn epoch, and
// query the published snapshot. Add geospanner.WithWAL(dir) to make the
// same server durable, and geospanner.RecoverServer(dir) to rebuild it
// bit-exactly after a crash.
func ExampleNewServer() {
	inst, err := geospanner.GenerateInstance(1, 60, 200, 60)
	if err != nil {
		panic(err)
	}
	s, err := geospanner.NewServer(inst.Points, inst.Radius)
	if err != nil {
		panic(err)
	}

	ep, err := s.Apply([]geospanner.TopologyEvent{
		geospanner.NewCrash(7),
		geospanner.NewMove(3, geospanner.Pt(100, 100)),
	})
	if err != nil {
		panic(err)
	}

	topo := ep.Topology()
	fmt.Println("epoch:", ep.Seq)
	fmt.Println("alive:", topo.Alive, "of", topo.Nodes)
	fmt.Println("node 7 alive:", ep.Alive(7))
	// Output:
	// epoch: 1
	// alive: 59 of 60
	// node 7 alive: false
}
